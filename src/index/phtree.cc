#include "index/phtree.h"

#include <bit>

#include "cell/coverer.h"

namespace geoblocks::index {

namespace {

uint64_t SpreadBits(uint32_t v) {
  uint64_t x = v & 0x3FFFFFFFull;
  x = (x | (x << 16)) & 0x0000FFFF0000FFFFull;
  x = (x | (x << 8)) & 0x00FF00FF00FF00FFull;
  x = (x | (x << 4)) & 0x0F0F0F0F0F0F0F0Full;
  x = (x | (x << 2)) & 0x3333333333333333ull;
  x = (x | (x << 1)) & 0x5555555555555555ull;
  return x;
}

uint32_t CompressBits(uint64_t x) {
  x &= 0x5555555555555555ull;
  x = (x | (x >> 1)) & 0x3333333333333333ull;
  x = (x | (x >> 2)) & 0x0F0F0F0F0F0F0F0Full;
  x = (x | (x >> 4)) & 0x00FF00FF00FF00FFull;
  x = (x | (x >> 8)) & 0x0000FFFF0000FFFFull;
  x = (x | (x >> 16)) & 0x00000000FFFFFFFFull;
  return static_cast<uint32_t>(x);
}

}  // namespace

uint64_t InterleaveBits(uint32_t i, uint32_t j) {
  return (SpreadBits(i) << 1) | SpreadBits(j);
}

std::pair<uint32_t, uint32_t> DeinterleaveBits(uint64_t key) {
  return {CompressBits(key >> 1), CompressBits(key)};
}

PhTree::~PhTree() { DestroyChild(root_); }

PhTree::PhTree(PhTree&& o) noexcept : root_(o.root_), size_(o.size_) {
  o.root_ = Child{};
  o.size_ = 0;
}

PhTree& PhTree::operator=(PhTree&& o) noexcept {
  if (this != &o) {
    DestroyChild(root_);
    root_ = o.root_;
    size_ = o.size_;
    o.root_ = Child{};
    o.size_ = 0;
  }
  return *this;
}

void PhTree::DestroyChild(Child child) {
  if (child.IsNull()) return;
  if (child.is_bucket) {
    delete child.bucket();
    return;
  }
  Node* node = child.node();
  for (const Child& c : node->children) DestroyChild(c);
  delete node;
}

int PhTree::HighestDifferingPair(uint64_t a, uint64_t b) {
  const uint64_t diff = a ^ b;
  return (63 - std::countl_zero(diff)) / 2;
}

uint64_t PhTree::PrefixAbove(uint64_t key, int pair) {
  // Clears bit pairs <= pair.
  const int shift = 2 * (pair + 1);
  if (shift >= 64) return 0;
  return (key >> shift) << shift;
}

PhTree::Child PhTree::InsertIntoChild(Child child, uint64_t key,
                                      uint32_t row) {
  if (child.IsNull()) {
    auto* bucket = new Bucket{key, {row}};
    return Child{bucket, true};
  }
  if (child.is_bucket) {
    Bucket* bucket = child.bucket();
    if (bucket->key == key) {
      bucket->rows.push_back(row);
      return child;
    }
    // Split: a new node at the highest differing bit pair with the old
    // bucket and a fresh bucket as its two children.
    const int pair = HighestDifferingPair(bucket->key, key);
    Node* node = new Node{PrefixAbove(key, pair), pair, {}};
    node->children[(bucket->key >> (2 * pair)) & 3] = child;
    node->children[(key >> (2 * pair)) & 3] =
        Child{new Bucket{key, {row}}, true};
    return Child{node, false};
  }
  Node* node = child.node();
  if (PrefixAbove(key, node->pair) != node->prefix) {
    // The key diverges above this node: interpose a new node at the
    // highest differing pair (prefix sharing / path compression).
    const int pair = HighestDifferingPair(node->prefix, key);
    Node* parent = new Node{PrefixAbove(key, pair), pair, {}};
    parent->children[(node->prefix >> (2 * pair)) & 3] = child;
    parent->children[(key >> (2 * pair)) & 3] =
        Child{new Bucket{key, {row}}, true};
    return Child{parent, false};
  }
  const int slot = static_cast<int>((key >> (2 * node->pair)) & 3);
  node->children[slot] = InsertIntoChild(node->children[slot], key, row);
  return child;
}

void PhTree::Insert(uint32_t i, uint32_t j, uint32_t row) {
  root_ = InsertIntoChild(root_, InterleaveBits(i, j), row);
  ++size_;
}

uint64_t PhTree::WindowCount(uint32_t i_min, uint32_t i_max, uint32_t j_min,
                             uint32_t j_max) const {
  uint64_t count = 0;
  WindowQuery(i_min, i_max, j_min, j_max, [&](uint32_t) { ++count; });
  return count;
}

size_t PhTree::ChildBytes(const Child& child) const {
  if (child.IsNull()) return 0;
  if (child.is_bucket) {
    return sizeof(Bucket) + child.bucket()->rows.capacity() * sizeof(uint32_t);
  }
  size_t bytes = sizeof(Node);
  for (const Child& c : child.node()->children) bytes += ChildBytes(c);
  return bytes;
}

size_t PhTree::MemoryBytes() const { return ChildBytes(root_); }

PhTreeIndex::PhTreeIndex(const storage::SortedDataset* data) : data_(data) {
  const geo::Projection& proj = data->projection();
  for (size_t row = 0; row < data->num_rows(); ++row) {
    const geo::Point unit = proj.ToUnit(data->Location(row));
    const auto to_grid = [](double v) {
      const double scaled = v * static_cast<double>(PhTree::kGridSide);
      if (scaled <= 0.0) return 0u;
      if (scaled >= static_cast<double>(PhTree::kGridSide)) {
        return PhTree::kGridSide - 1;
      }
      return static_cast<uint32_t>(scaled);
    };
    tree_.Insert(to_grid(unit.x), to_grid(unit.y),
                 static_cast<uint32_t>(row));
  }
}

PhTreeIndex::Window PhTreeIndex::ToWindow(const geo::Rect& world_rect) const {
  Window w{0, 0, 0, 0, false};
  if (world_rect.IsEmpty()) {
    w.empty = true;
    return w;
  }
  const geo::Rect unit = data_->projection().ToUnit(world_rect);
  const auto to_grid = [](double v) {
    const double scaled = v * static_cast<double>(PhTree::kGridSide);
    if (scaled <= 0.0) return 0u;
    if (scaled >= static_cast<double>(PhTree::kGridSide)) {
      return PhTree::kGridSide - 1;
    }
    return static_cast<uint32_t>(scaled);
  };
  w.i_min = to_grid(unit.min.x);
  w.i_max = to_grid(unit.max.x);
  w.j_min = to_grid(unit.min.y);
  w.j_max = to_grid(unit.max.y);
  return w;
}

geo::Rect PhTreeIndex::InteriorRect(const geo::Polygon& polygon) const {
  return cell::GetInteriorRect(polygon);
}

core::QueryResult PhTreeIndex::Select(
    const geo::Polygon& polygon, const core::AggregateRequest& request) const {
  return SelectWindow(ToWindow(InteriorRect(polygon)), request);
}

core::QueryResult PhTreeIndex::SelectWindow(
    const Window& window, const core::AggregateRequest& request) const {
  core::Accumulator acc(&request);
  if (!window.empty) {
    tree_.WindowQuery(window.i_min, window.i_max, window.j_min, window.j_max,
                      [&](uint32_t row) {
                        acc.AddRow([&](int col) {
                          return data_->Value(row, col);
                        });
                      });
  }
  return acc.Finish();
}

uint64_t PhTreeIndex::Count(const geo::Polygon& polygon) const {
  const Window w = ToWindow(InteriorRect(polygon));
  if (w.empty) return 0;
  return tree_.WindowCount(w.i_min, w.i_max, w.j_min, w.j_max);
}

}  // namespace geoblocks::index
