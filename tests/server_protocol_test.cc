// Parser conformance + fuzz for the query server's wire protocol
// (src/server/protocol.h, docs/PROTOCOL.md). Two layers:
//
//  1. Pure codec tests — DecodeRequest/DecodeResponse over in-memory
//     buffers: round trips for every opcode, and a malformed-input matrix
//     (truncations, bad counts, non-finite coordinates, trailing bytes,
//     unknown versions/opcodes) that must throw ProtocolError with the
//     right status, never touch bad memory (CI runs this under ASan).
//
//  2. Live-socket conformance and fuzz — a real QueryServer over a tiny
//     sharded set: truncated length prefixes, oversized frames, garbage
//     bodies, mutated valid frames, interleaved pipelined commands. The
//     contract under attack: the server answers a typed error and closes
//     THAT connection; the process never crashes, and a fresh client
//     still gets bit-correct answers afterwards.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <limits>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "core/block_set.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"
#include "storage/sharded_dataset.h"
#include "util/thread_pool.h"
#include "workload/datagen.h"
#include "workload/polygen.h"

namespace geoblocks {
namespace {

using core::AggFn;
using core::AggregateRequest;
using core::BlockSet;
using core::BlockSetOptions;
using core::GeoBlock;
using server::Client;
using server::DecodeRequest;
using server::Opcode;
using server::ProtocolError;
using server::Request;
using server::Response;
using server::Status;

geo::Polygon Triangle() {
  return geo::Polygon{{-74.0, 40.7}, {-73.9, 40.7}, {-73.95, 40.8}};
}

AggregateRequest TwoAggs() {
  AggregateRequest req;
  req.Add(AggFn::kCount);
  req.Add(AggFn::kSum, 0);
  return req;
}

/// Strips the u32 length prefix off a framed message.
std::string Body(const std::string& framed) { return framed.substr(4); }

Status DecodeStatusOf(const std::string& body) {
  try {
    (void)DecodeRequest(body);
    return Status::kOk;
  } catch (const ProtocolError& e) {
    return e.status;
  }
}

// ---------------------------------------------------------------------------
// Codec round trips
// ---------------------------------------------------------------------------

TEST(ProtocolCodec, PingRoundTrip) {
  const std::string payload("health\0check", 12);  // embedded NUL survives
  const Request r = DecodeRequest(Body(server::EncodePing(7, 42, payload)));
  EXPECT_EQ(r.header.opcode, Opcode::kPing);
  EXPECT_EQ(r.header.tenant, 7u);
  EXPECT_EQ(r.header.cookie, 42u);
  EXPECT_EQ(r.ping_payload, payload);
}

TEST(ProtocolCodec, SelectRoundTripIsBitIdentical) {
  geo::Polygon poly = Triangle();
  poly.AddRing({{-73.98, 40.72}, {-73.96, 40.72}, {-73.97, 40.74}});
  const AggregateRequest req = TwoAggs();
  const Request r =
      DecodeRequest(Body(server::EncodeSelect(3, 99, poly, req)));
  ASSERT_EQ(r.header.opcode, Opcode::kSelect);
  ASSERT_EQ(r.polygon.rings().size(), poly.rings().size());
  for (size_t i = 0; i < poly.rings().size(); ++i) {
    ASSERT_EQ(r.polygon.rings()[i].size(), poly.rings()[i].size());
    for (size_t v = 0; v < poly.rings()[i].size(); ++v) {
      EXPECT_EQ(r.polygon.rings()[i][v], poly.rings()[i][v]);
    }
  }
  ASSERT_EQ(r.aggregates.size(), req.size());
  for (size_t s = 0; s < req.size(); ++s) {
    EXPECT_EQ(r.aggregates.specs()[s].fn, req.specs()[s].fn);
    EXPECT_EQ(r.aggregates.specs()[s].column, req.specs()[s].column);
  }
}

TEST(ProtocolCodec, UpdateRoundTripIsBitIdentical) {
  std::vector<GeoBlock::UpdateTuple> tuples(2);
  tuples[0].location = {-73.97, 40.75};
  tuples[0].values = {1.0, 2.5, -3.0};
  tuples[1].location = {-73.99, 40.71};
  tuples[1].values = {0.125, -0.25, 7.0};
  const Request r =
      DecodeRequest(Body(server::EncodeUpdate(1, 5, tuples)));
  ASSERT_EQ(r.header.opcode, Opcode::kUpdate);
  ASSERT_EQ(r.tuples.size(), tuples.size());
  for (size_t i = 0; i < tuples.size(); ++i) {
    EXPECT_EQ(r.tuples[i].location, tuples[i].location);
    EXPECT_EQ(r.tuples[i].values, tuples[i].values);
  }
}

TEST(ProtocolCodec, DeadlineAndFenceRoundTrip) {
  // v2 header fields survive the round trip.
  const Request ping =
      DecodeRequest(Body(server::EncodePing(7, 42, "x", /*deadline_ms=*/250)));
  EXPECT_EQ(ping.header.version, server::kProtocolVersion);
  EXPECT_EQ(ping.header.deadline_ms, 250u);

  std::vector<GeoBlock::UpdateTuple> tuples(1);
  tuples[0].location = {-73.97, 40.75};
  tuples[0].values = {1.0};
  const Request upd = DecodeRequest(Body(server::EncodeUpdate(
      1, 5, tuples, /*fence=*/0xFEEDFACEu, /*deadline_ms=*/99)));
  EXPECT_EQ(upd.update_fence, 0xFEEDFACEu);
  EXPECT_EQ(upd.header.deadline_ms, 99u);
  ASSERT_EQ(upd.tuples.size(), 1u);
  EXPECT_EQ(upd.tuples[0].values, tuples[0].values);
}

TEST(ProtocolCodec, VersionOneRequestsStillDecode) {
  // A v1 request has no deadline field and no UPDATE fence; a v2 server
  // must keep accepting it (kMinProtocolVersion) with both defaulted to 0.
  const auto v1_header = [](Opcode op, uint32_t tenant, uint64_t cookie) {
    std::string body;
    body.push_back('\x01');
    body.push_back(static_cast<char>(op));
    body.append(reinterpret_cast<const char*>(&tenant), 4);
    body.append(reinterpret_cast<const char*>(&cookie), 8);
    return body;
  };
  std::string ping = v1_header(Opcode::kPing, 3, 77);
  ping += "hello";
  const Request decoded_ping = DecodeRequest(ping);
  EXPECT_EQ(decoded_ping.header.version, 1);
  EXPECT_EQ(decoded_ping.header.tenant, 3u);
  EXPECT_EQ(decoded_ping.header.cookie, 77u);
  EXPECT_EQ(decoded_ping.header.deadline_ms, 0u);
  EXPECT_EQ(decoded_ping.ping_payload, "hello");

  // v1 UPDATE: u32 num_tuples directly after the header, no fence.
  std::string upd = v1_header(Opcode::kUpdate, 1, 5);
  const uint32_t num_tuples = 1;
  upd.append(reinterpret_cast<const char*>(&num_tuples), 4);
  const double x = -73.97, y = 40.75;
  upd.append(reinterpret_cast<const char*>(&x), 8);
  upd.append(reinterpret_cast<const char*>(&y), 8);
  const uint32_t num_values = 1;
  upd.append(reinterpret_cast<const char*>(&num_values), 4);
  const double v = 2.5;
  upd.append(reinterpret_cast<const char*>(&v), 8);
  const Request decoded_upd = DecodeRequest(upd);
  EXPECT_EQ(decoded_upd.update_fence, 0u);
  ASSERT_EQ(decoded_upd.tuples.size(), 1u);
  EXPECT_EQ(decoded_upd.tuples[0].values, std::vector<double>{2.5});

  // A v1 response body is accepted by DecodeResponse too.
  std::string resp;
  resp.push_back('\x01');
  resp.push_back(static_cast<char>(Status::kBusy));
  const uint64_t cookie = 9;
  resp.append(reinterpret_cast<const char*>(&cookie), 8);
  const Response decoded_resp = server::DecodeResponse(resp);
  EXPECT_EQ(decoded_resp.status, Status::kBusy);
  EXPECT_EQ(decoded_resp.cookie, 9u);
}

TEST(ProtocolCodec, ResponsePayloadsRoundTrip) {
  server::SelectResult sr;
  sr.count = 123;
  sr.values = {1.5, -2.25, 1e-300};
  const server::SelectResult sr2 =
      server::DecodeSelectResult(server::EncodeSelectResult(sr));
  EXPECT_EQ(sr2.count, sr.count);
  EXPECT_EQ(sr2.values, sr.values);

  EXPECT_EQ(server::DecodeCountResult(server::EncodeCountResult(7)), 7u);

  const server::UpdateAck ack2 =
      server::DecodeUpdateAck(server::EncodeUpdateAck({9, 44}));
  EXPECT_EQ(ack2.accepted, 9u);
  EXPECT_EQ(ack2.change_number, 44u);

  const std::vector<std::pair<std::string, uint64_t>> entries = {
      {"server.frames", 10}, {"tenant.3.admitted", 4}};
  EXPECT_EQ(server::DecodeStatsResult(server::EncodeStatsResult(entries)),
            entries);

  const Response resp = server::DecodeResponse(
      Body(server::EncodeResponse(Status::kBusy, 77, "x")));
  EXPECT_EQ(resp.status, Status::kBusy);
  EXPECT_EQ(resp.cookie, 77u);
  EXPECT_EQ(resp.payload, "x");
}

// ---------------------------------------------------------------------------
// Malformed-input matrix
// ---------------------------------------------------------------------------

TEST(ProtocolCodec, RejectsShortHeaderAndUnknownVersionOrOpcode) {
  EXPECT_EQ(DecodeStatusOf(""), Status::kMalformed);
  EXPECT_EQ(DecodeStatusOf("\x01"), Status::kMalformed);
  // Valid version + opcode but a header cut short mid-cookie.
  std::string short_header(13, '\0');
  short_header[0] = server::kProtocolVersion;
  short_header[1] = static_cast<char>(Opcode::kPing);
  EXPECT_EQ(DecodeStatusOf(short_header), Status::kMalformed);

  std::string body = Body(server::EncodePing(0, 0, ""));
  body[0] = 9;  // unknown version
  EXPECT_EQ(DecodeStatusOf(body), Status::kUnsupported);

  body = Body(server::EncodePing(0, 0, ""));
  body[1] = 0x7F;  // unknown opcode
  EXPECT_EQ(DecodeStatusOf(body), Status::kUnsupported);
}

TEST(ProtocolCodec, RejectsTruncatedAndOverclaimedPayloads) {
  const std::string select =
      Body(server::EncodeSelect(0, 0, Triangle(), TwoAggs()));
  // Every strict prefix of a valid SELECT must be malformed, not UB
  // (18 = the v2 request header size).
  for (size_t cut = 18; cut < select.size(); ++cut) {
    EXPECT_EQ(DecodeStatusOf(select.substr(0, cut)), Status::kMalformed)
        << "prefix " << cut;
  }
  // A vertex count far beyond the actual bytes must be caught by the
  // bytes-present check, not allocate or scan garbage.
  std::string overclaim = select;
  overclaim[20] = '\xFF';  // ring vertex count u32 at offset 20 (v2)
  overclaim[21] = '\x00';
  EXPECT_EQ(DecodeStatusOf(overclaim), Status::kMalformed);
}

TEST(ProtocolCodec, RejectsTrailingBytesAndNonFiniteCoordinates) {
  std::string select = Body(server::EncodeSelect(0, 0, Triangle(), TwoAggs()));
  select.push_back('\x00');
  EXPECT_EQ(DecodeStatusOf(select), Status::kMalformed);

  geo::Polygon nan_poly{{-74.0, 40.7},
                        {std::numeric_limits<double>::quiet_NaN(), 40.7},
                        {-73.95, 40.8}};
  EXPECT_EQ(DecodeStatusOf(Body(server::EncodeCount(0, 0, nan_poly))),
            Status::kMalformed);
  geo::Polygon huge_poly{{-74.0, 40.7}, {1e30, 40.7}, {-73.95, 40.8}};
  EXPECT_EQ(DecodeStatusOf(Body(server::EncodeCount(0, 0, huge_poly))),
            Status::kMalformed);

  std::vector<GeoBlock::UpdateTuple> tuples(1);
  tuples[0].location = {-73.97, 40.75};
  tuples[0].values = {std::numeric_limits<double>::infinity()};
  EXPECT_EQ(DecodeStatusOf(Body(server::EncodeUpdate(0, 0, tuples))),
            Status::kMalformed);
}

TEST(ProtocolCodec, RejectsImplausibleCounts) {
  // Zero rings (18 = the v2 request header size).
  std::string body(18, '\0');
  body[0] = server::kProtocolVersion;
  body[1] = static_cast<char>(Opcode::kCount);
  body += std::string(2, '\0');  // u16 num_rings == 0
  EXPECT_EQ(DecodeStatusOf(body), Status::kMalformed);

  // Zero-tuple UPDATE (u64 fence then u32 num_tuples == 0).
  std::string upd(18, '\0');
  upd[0] = server::kProtocolVersion;
  upd[1] = static_cast<char>(Opcode::kUpdate);
  upd += std::string(12, '\0');
  EXPECT_EQ(DecodeStatusOf(upd), Status::kMalformed);

  // STATS with trailing bytes.
  std::string stats = Body(server::EncodeStats(0, 0));
  stats.push_back('x');
  EXPECT_EQ(DecodeStatusOf(stats), Status::kMalformed);
}

// ---------------------------------------------------------------------------
// Live-socket conformance + fuzz
// ---------------------------------------------------------------------------

class ServerProtocolTest : public ::testing::Test {
 protected:
  static constexpr int kLevel = 15;

  static void SetUpTestSuite() {
    const storage::PointTable raw = workload::GenTaxi(8000, 13);
    storage::ExtractOptions extract;
    extract.clean_bounds = workload::NycBounds();
    data_ = new storage::SortedDataset(
        storage::SortedDataset::Extract(raw, extract));
    storage::ShardOptions shard_options;
    shard_options.num_shards = 4;
    shard_options.align_level = kLevel;
    const storage::ShardedDataset sharded =
        storage::ShardedDataset::Partition(*data_, shard_options);
    pool_ = new util::ThreadPool(2);
    set_ = new BlockSet(
        BlockSet::Build(sharded, BlockSetOptions{{kLevel, {}}}, pool_));
    polygons_ = new std::vector<geo::Polygon>(
        workload::Neighborhoods(raw, 8, 13));

    server::ServerOptions options;
    options.pool = pool_;
    server_ = new server::QueryServer(set_, options);
    server_->Start();
  }

  static void TearDownTestSuite() {
    server_->Stop();
    delete server_;
    delete polygons_;
    delete set_;
    delete pool_;
    delete data_;
    server_ = nullptr;
    polygons_ = nullptr;
    set_ = nullptr;
    pool_ = nullptr;
    data_ = nullptr;
  }

  /// The liveness oracle: after any attack, a fresh client must still get
  /// the exact direct-engine answer.
  static void ExpectServerHealthy() {
    Client client = Client::Connect(server_->port());
    const AggregateRequest req = TwoAggs();
    const geo::Polygon& poly = polygons_->front();
    const core::QueryResult got = client.Select(poly, req);
    const core::QueryResult want = set_->Select(poly, req);
    ASSERT_EQ(got.count, want.count);
    ASSERT_EQ(got.values, want.values);
  }

  static storage::SortedDataset* data_;
  static util::ThreadPool* pool_;
  static BlockSet* set_;
  static std::vector<geo::Polygon>* polygons_;
  static server::QueryServer* server_;
};

storage::SortedDataset* ServerProtocolTest::data_ = nullptr;
util::ThreadPool* ServerProtocolTest::pool_ = nullptr;
BlockSet* ServerProtocolTest::set_ = nullptr;
std::vector<geo::Polygon>* ServerProtocolTest::polygons_ = nullptr;
server::QueryServer* ServerProtocolTest::server_ = nullptr;

TEST_F(ServerProtocolTest, TruncatedLengthPrefixClosesCleanly) {
  Client client = Client::Connect(server_->port());
  client.SendBytes(std::string("\x08\x00", 2));  // half a length prefix
  client.ShutdownWrite();
  Response resp;
  EXPECT_FALSE(client.ReadResponse(&resp));  // clean EOF, no response
  ExpectServerHealthy();
}

TEST_F(ServerProtocolTest, TruncatedBodyClosesCleanly) {
  Client client = Client::Connect(server_->port());
  const std::string frame = server::EncodePing(0, 1, "abcdef");
  client.SendBytes(frame.substr(0, frame.size() - 3));
  client.ShutdownWrite();
  Response resp;
  EXPECT_FALSE(client.ReadResponse(&resp));
  ExpectServerHealthy();
}

TEST_F(ServerProtocolTest, OversizedLengthPrefixIsRefusedBeforeReading) {
  Client client = Client::Connect(server_->port());
  const uint32_t huge = 0xFFFFFFFF;
  client.SendBytes(
      std::string(reinterpret_cast<const char*>(&huge), sizeof(huge)));
  Response resp;
  ASSERT_TRUE(client.ReadResponse(&resp));
  EXPECT_EQ(resp.status, Status::kTooLarge);
  EXPECT_FALSE(client.ReadResponse(&resp));  // then the connection closes
  ExpectServerHealthy();
}

TEST_F(ServerProtocolTest, ZeroLengthFrameIsRefused) {
  Client client = Client::Connect(server_->port());
  client.SendBytes(std::string(4, '\0'));
  Response resp;
  ASSERT_TRUE(client.ReadResponse(&resp));
  EXPECT_EQ(resp.status, Status::kTooLarge);
  ExpectServerHealthy();
}

TEST_F(ServerProtocolTest, MalformedBodyGetsTypedErrorWithCookieThenClose) {
  Client client = Client::Connect(server_->port());
  std::string body = Body(server::EncodeSelect(5, 0xDEADBEEF, Triangle(),
                                               TwoAggs()));
  body.resize(body.size() - 2);  // truncate the aggregate specs
  std::string frame;
  server::AppendFrame(&frame, body);
  client.SendBytes(frame);
  Response resp;
  ASSERT_TRUE(client.ReadResponse(&resp));
  EXPECT_EQ(resp.status, Status::kMalformed);
  EXPECT_EQ(resp.cookie, 0xDEADBEEFu);  // best-effort cookie echo
  EXPECT_FALSE(client.ReadResponse(&resp));
  ExpectServerHealthy();
}

TEST_F(ServerProtocolTest, UnknownOpcodeAndVersionAreUnsupported) {
  {
    Client client = Client::Connect(server_->port());
    std::string body = Body(server::EncodePing(0, 9, ""));
    body[1] = 0x7E;
    std::string frame;
    server::AppendFrame(&frame, body);
    client.SendBytes(frame);
    Response resp;
    ASSERT_TRUE(client.ReadResponse(&resp));
    EXPECT_EQ(resp.status, Status::kUnsupported);
  }
  {
    Client client = Client::Connect(server_->port());
    std::string body = Body(server::EncodePing(0, 9, ""));
    body[0] = 0x30;
    std::string frame;
    server::AppendFrame(&frame, body);
    client.SendBytes(frame);
    Response resp;
    ASSERT_TRUE(client.ReadResponse(&resp));
    EXPECT_EQ(resp.status, Status::kUnsupported);
  }
  ExpectServerHealthy();
}

TEST_F(ServerProtocolTest, SchemaInvalidRequestsAreMalformed) {
  // Aggregate over a column the served schema does not have.
  {
    Client client = Client::Connect(server_->port());
    AggregateRequest req;
    req.Add(AggFn::kSum, 200);
    client.SendBytes(server::EncodeSelect(0, 1, Triangle(), req));
    Response resp;
    ASSERT_TRUE(client.ReadResponse(&resp));
    EXPECT_EQ(resp.status, Status::kMalformed);
    EXPECT_FALSE(client.ReadResponse(&resp));
  }
  // Update tuple whose width does not match the schema.
  {
    Client client = Client::Connect(server_->port());
    std::vector<GeoBlock::UpdateTuple> tuples(1);
    tuples[0].location = {-73.97, 40.75};
    tuples[0].values = {1.0};  // schema has more columns
    client.SendBytes(server::EncodeUpdate(0, 2, tuples));
    Response resp;
    ASSERT_TRUE(client.ReadResponse(&resp));
    EXPECT_EQ(resp.status, Status::kMalformed);
  }
  ExpectServerHealthy();
}

TEST_F(ServerProtocolTest, PipelinedInterleavedCommandsAllAnswerByCookie) {
  Client client = Client::Connect(server_->port());
  const AggregateRequest req = TwoAggs();
  // Fire a burst of interleaved commands without reading, then collect.
  std::string burst;
  std::vector<uint64_t> cookies;
  for (uint64_t i = 0; i < 24; ++i) {
    const uint64_t cookie = 1000 + i;
    cookies.push_back(cookie);
    const geo::Polygon& poly = (*polygons_)[i % polygons_->size()];
    switch (i % 3) {
      case 0:
        burst += server::EncodeSelect(2, cookie, poly, req);
        break;
      case 1:
        burst += server::EncodeCount(2, cookie, poly);
        break;
      default:
        burst += server::EncodePing(2, cookie, "p");
        break;
    }
  }
  client.SendBytes(burst);
  std::vector<uint64_t> seen;
  for (size_t i = 0; i < cookies.size(); ++i) {
    Response resp;
    ASSERT_TRUE(client.ReadResponse(&resp));
    EXPECT_EQ(resp.status, Status::kOk);
    seen.push_back(resp.cookie);
  }
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(seen, cookies);  // every pipelined request answered exactly once
  ExpectServerHealthy();
}

TEST_F(ServerProtocolTest, RandomGarbageFramesNeverCrashTheServer) {
  std::mt19937_64 rng(20260808);
  for (int iter = 0; iter < 120; ++iter) {
    Client client = Client::Connect(server_->port());
    const size_t len = 1 + rng() % 160;
    std::string body(len, '\0');
    for (char& c : body) c = static_cast<char>(rng());
    std::string frame;
    server::AppendFrame(&frame, body);
    try {
      client.SendBytes(frame);
      // The server either answers (typed error or, for bytes that happen
      // to parse, a real response) or closes; both are clean outcomes.
      Response resp;
      (void)client.ReadResponse(&resp);
    } catch (const std::exception&) {
      // Send/read races with the server closing are fine too.
    }
  }
  ExpectServerHealthy();
}

TEST_F(ServerProtocolTest, MutatedValidFramesNeverCrashTheServer) {
  std::mt19937_64 rng(42);
  const AggregateRequest req = TwoAggs();
  for (int iter = 0; iter < 120; ++iter) {
    const geo::Polygon& poly = (*polygons_)[iter % polygons_->size()];
    std::string frame = (iter % 2 == 0)
                            ? server::EncodeSelect(1, iter, poly, req)
                            : server::EncodeCount(1, iter, poly);
    // Flip a few random bytes anywhere, including the length prefix.
    const int flips = 1 + static_cast<int>(rng() % 4);
    for (int f = 0; f < flips; ++f) {
      frame[rng() % frame.size()] ^= static_cast<char>(1 + rng() % 255);
    }
    // Cap a mutated length prefix so a "read 3 GiB" request does not
    // stall the fuzz loop waiting for bytes that never come.
    uint32_t len;
    std::memcpy(&len, frame.data(), 4);
    if (len > frame.size() * 2) {
      len = static_cast<uint32_t>(frame.size() - 4);
      std::memcpy(frame.data(), &len, 4);
    }
    Client client = Client::Connect(server_->port());
    try {
      client.SendBytes(frame);
      client.ShutdownWrite();
      Response resp;
      while (client.ReadResponse(&resp)) {
      }
    } catch (const std::exception&) {
    }
  }
  ExpectServerHealthy();
}

}  // namespace
}  // namespace geoblocks
