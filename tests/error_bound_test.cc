#include <gtest/gtest.h>

#include <random>

#include "cell/coverer.h"
#include "core/geoblock.h"
#include "workload/datagen.h"
#include "workload/exact.h"
#include "workload/polygen.h"

namespace geoblocks {
namespace {

/// Direct verification of the paper's headline guarantee (Section 3.2):
/// "any point on the cell covering is within a distance sqrt(e1^2 + e2^2)
/// from the polygon outline, where e1, e2 are the side lengths of the
/// cell". We sample points from covering cells that lie *outside* the
/// polygon (the false positives) and check their distance to the outline
/// against the diagonal of the cell that admitted them.
class ErrorBoundPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ErrorBoundPropertyTest, FalsePositivesAreWithinCellDiagonal) {
  std::mt19937_64 rng(GetParam() * 104729);
  std::uniform_real_distribution<double> uni(0.0, 1.0);
  const geo::Polygon poly = geo::Polygon::RegularNGon(
      {0.35 + 0.3 * uni(rng), 0.35 + 0.3 * uni(rng)}, 0.08 + 0.18 * uni(rng),
      3 + static_cast<int>(uni(rng) * 9), uni(rng) * 6.28);
  const cell::PolygonRegion region(&poly);
  cell::CovererOptions options;
  options.max_level = 8 + GetParam() % 6;
  const auto covering = cell::GetCovering(region, options);
  ASSERT_FALSE(covering.empty());

  for (const cell::CoveringCell& cc : covering) {
    const geo::Rect rect = cc.cell.ToRect();
    const double diagonal = rect.Diagonal();
    for (int s = 0; s < 30; ++s) {
      const geo::Point p{rect.min.x + uni(rng) * rect.Width(),
                         rect.min.y + uni(rng) * rect.Height()};
      if (poly.Contains(p)) continue;  // true positive, no error
      ASSERT_LE(poly.DistanceToOutline(p), diagonal * (1.0 + 1e-9))
          << "cell " << cc.cell << " point " << p;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ErrorBoundPropertyTest,
                         ::testing::Range(1, 13));

TEST(ErrorBoundTest, DistanceToOutlineBasics) {
  const geo::Polygon square{{0, 0}, {4, 0}, {4, 4}, {0, 4}};
  EXPECT_DOUBLE_EQ(square.DistanceToOutline({2, 2}), 2.0);   // center
  EXPECT_DOUBLE_EQ(square.DistanceToOutline({2, 0}), 0.0);   // on edge
  EXPECT_DOUBLE_EQ(square.DistanceToOutline({2, -3}), 3.0);  // outside
  EXPECT_DOUBLE_EQ(square.DistanceToOutline({6, 6}),
                   std::sqrt(8.0));  // past a corner
}

/// The end-to-end version of the bound: the count error of a GeoBlock
/// query can only come from points within one cell diagonal of the
/// outline.
TEST(ErrorBoundTest, BlockCountErrorOnlyFromBoundaryBand) {
  const storage::PointTable raw = workload::GenTaxi(30000, 42);
  storage::ExtractOptions options;
  options.clean_bounds = workload::NycBounds();
  const auto data = storage::SortedDataset::Extract(raw, options);
  const core::GeoBlock block =
      core::GeoBlock::Build(data, core::BlockOptions{16, {}});

  const auto polygons = workload::Neighborhoods(raw, 8, 7);
  for (const geo::Polygon& poly : polygons) {
    const uint64_t approx = block.Count(poly);
    const uint64_t exact = workload::ExactCount(data, poly);
    ASSERT_GE(approx, exact);  // only false positives
    // Count all points within one level-16 cell diagonal (in unit space)
    // of the outline; the error must not exceed that band population.
    const geo::Polygon unit_poly = data.projection().ToUnit(poly);
    const double diagonal =
        cell::CellId::FromPoint({0.5, 0.5}).Parent(16).ToRect().Diagonal();
    uint64_t band = 0;
    for (size_t row = 0; row < data.num_rows(); ++row) {
      const geo::Point p = data.projection().ToUnit(data.Location(row));
      if (!unit_poly.Contains(p) &&
          unit_poly.DistanceToOutline(p) <= diagonal) {
        ++band;
      }
    }
    ASSERT_LE(approx - exact, band);
  }
}

/// Halving the cell size (one level finer) must never increase the count
/// error; over several levels the error shrinks to (near) zero.
TEST(ErrorBoundTest, ErrorMonotoneInLevelForFixedPolygon) {
  const storage::PointTable raw = workload::GenTaxi(20000, 43);
  storage::ExtractOptions options;
  options.clean_bounds = workload::NycBounds();
  const auto data = storage::SortedDataset::Extract(raw, options);
  const auto polygons = workload::Neighborhoods(raw, 5, 11);
  for (const geo::Polygon& poly : polygons) {
    const uint64_t exact = workload::ExactCount(data, poly);
    uint64_t prev_error = UINT64_MAX;
    for (const int level : {12, 14, 16, 18, 20}) {
      const core::GeoBlock block =
          core::GeoBlock::Build(data, core::BlockOptions{level, {}});
      const uint64_t approx = block.Count(poly);
      ASSERT_GE(approx, exact);
      const uint64_t error = approx - exact;
      ASSERT_LE(error, prev_error) << "level " << level;
      prev_error = error;
    }
    // At level 20 (~30 m cells) the error should be a tiny fraction.
    if (exact > 500) {
      EXPECT_LT(static_cast<double>(prev_error),
                0.05 * static_cast<double>(exact));
    }
  }
}

}  // namespace
}  // namespace geoblocks
