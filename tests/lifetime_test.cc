#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "core/block_set.h"
#include "core/geoblock.h"
#include "storage/dataset_view.h"
#include "storage/sharded_dataset.h"
#include "util/thread_pool.h"
#include "workload/datagen.h"
#include "workload/polygen.h"

namespace geoblocks {
namespace {

using core::AggFn;
using core::AggregateRequest;
using core::BlockSet;
using core::BlockSetOptions;
using core::GeoBlock;
using core::QueryResult;

/// Regression suite for the historical GeoBlock::dataset() lifetime hazard:
/// blocks used to hold a raw `const SortedDataset*` into a shard vector, so
/// moving (or dropping) the ShardedDataset left every block dangling. With
/// DatasetView the block co-owns the parent dataset through a shared_ptr,
/// so moves and handle drops are safe — these tests exercise exactly those
/// sequences and rely on the ASan/UBSan CI job to catch any stale read.
class LifetimeTest : public ::testing::Test {
 protected:
  static constexpr int kLevel = 15;

  void SetUp() override {
    raw_ = workload::GenTaxi(20000, 5);
    storage::ExtractOptions options;
    options.clean_bounds = workload::NycBounds();
    data_ = std::make_shared<const storage::SortedDataset>(
        storage::SortedDataset::Extract(raw_, options));
    polygons_ = workload::Neighborhoods(raw_, 10, 3);
    // Reference answers, computed up front from a throwaway block so no
    // long-lived object co-owns the dataset and skews the ownership checks.
    const GeoBlock reference = GeoBlock::Build(
        storage::DatasetView::All(data_), core::BlockOptions{kLevel, {}});
    reference_cells_ = reference.num_cells();
    for (const geo::Polygon& poly : polygons_) {
      expected_.push_back(reference.Select(poly, Request()));
      expected_counts_.push_back(reference.Count(poly));
    }
  }

  static AggregateRequest Request() {
    AggregateRequest req;
    req.Add(AggFn::kCount);
    req.Add(AggFn::kSum, 0);
    req.Add(AggFn::kAvg, 2);
    return req;
  }

  void ExpectMatchesReference(const QueryResult& got, size_t query) const {
    const QueryResult& want = expected_[query];
    ASSERT_EQ(got.count, want.count) << "query " << query;
    ASSERT_EQ(got.values.size(), want.values.size()) << "query " << query;
    for (size_t i = 0; i < got.values.size(); ++i) {
      ASSERT_EQ(got.values[i], want.values[i])
          << "query " << query << " value " << i;
    }
  }

  storage::PointTable raw_;
  std::shared_ptr<const storage::SortedDataset> data_;
  std::vector<geo::Polygon> polygons_;
  std::vector<QueryResult> expected_;
  std::vector<uint64_t> expected_counts_;
  size_t reference_cells_ = 0;
};

TEST_F(LifetimeTest, BlockOutlivesDatasetHandle) {
  GeoBlock block;
  {
    auto local = data_;
    block = GeoBlock::Build(
        storage::DatasetView::Window(local, 0, local->num_rows()),
        core::BlockOptions{kLevel, {}});
  }
  std::weak_ptr<const storage::SortedDataset> watch = data_;
  data_.reset();  // the block's view is now the only owner
  ASSERT_FALSE(watch.expired());
  for (size_t q = 0; q < polygons_.size(); ++q) {
    ExpectMatchesReference(block.Select(polygons_[q], Request()), q);
  }
  // Refinement re-reads the base rows through the view.
  const GeoBlock finer = block.CoarsenTo(kLevel + 1);
  EXPECT_GE(finer.num_cells(), block.num_cells());
  block = GeoBlock();
  EXPECT_FALSE(watch.expired()) << "finer still owns the parent";
}

TEST_F(LifetimeTest, MovedShardedDatasetStaysQueryable) {
  storage::ShardOptions options;
  options.num_shards = 4;
  options.align_level = kLevel;
  storage::ShardedDataset sharded =
      storage::ShardedDataset::Partition(data_, options);

  // Move the ShardedDataset; views must still read valid rows (the old
  // deep-copy design dangled here once the source shard vector moved).
  storage::ShardedDataset moved = std::move(sharded);
  const BlockSet set = BlockSet::Build(moved, BlockSetOptions{{kLevel, {}}});
  for (size_t q = 0; q < polygons_.size(); ++q) {
    ExpectMatchesReference(set.Select(polygons_[q], Request()), q);
  }
}

TEST_F(LifetimeTest, MovedBlockSetOutlivesPartitionAndHandle) {
  BlockSet set;
  {
    storage::ShardOptions options;
    options.num_shards = 7;
    options.align_level = kLevel;
    util::ThreadPool pool(2);
    const storage::ShardedDataset sharded =
        storage::ShardedDataset::Partition(data_, options);
    BlockSet built =
        BlockSet::Build(sharded, BlockSetOptions{{kLevel, {}}}, &pool);
    set = std::move(built);
    // `sharded` and `built` die here; the blocks' views keep the rows.
  }
  data_.reset();
  for (size_t q = 0; q < polygons_.size(); ++q) {
    ExpectMatchesReference(set.Select(polygons_[q], Request()), q);
    EXPECT_EQ(set.Count(polygons_[q]), expected_counts_[q]);
  }
  // Every shard block still reports a live dataset window.
  for (size_t s = 0; s < set.num_shards(); ++s) {
    EXPECT_TRUE(set.shard(s).dataset().has_data());
  }
}

TEST_F(LifetimeTest, CopiedBlockSharesParentOwnership) {
  GeoBlock block = GeoBlock::Build(storage::DatasetView::All(data_),
                                   core::BlockOptions{kLevel, {}});
  GeoBlock copy = block;
  std::weak_ptr<const storage::SortedDataset> watch = data_;
  data_.reset();
  block = GeoBlock();  // drop one owner
  ASSERT_FALSE(watch.expired());
  for (size_t q = 0; q < polygons_.size(); ++q) {
    ExpectMatchesReference(copy.Select(polygons_[q], Request()), q);
  }
  copy = GeoBlock();
  EXPECT_TRUE(watch.expired());
}

TEST_F(LifetimeTest, SingleBlockMatchesReferenceCellCount) {
  const GeoBlock block = GeoBlock::Build(storage::DatasetView::All(data_),
                                         core::BlockOptions{kLevel, {}});
  EXPECT_EQ(block.num_cells(), reference_cells_);
}

}  // namespace
}  // namespace geoblocks
