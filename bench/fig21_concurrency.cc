// Figure 21 (this repo's extension beyond the paper): cached-read
// throughput of the sharded engine at 1/2/4/8 reader threads, comparing
// the pre-PR locked baseline (a mutex around every per-shard GeoBlockQC
// probe) against the lock-free snapshot path. The trie snapshots are
// warmed and frozen first, so the two modes answer from identical cache
// state and every result can be compared bit for bit.
//
// Emits machine-readable BENCH_concurrency.json next to the binary. Note:
// CI containers may be single-core — the bench always verifies 0 result
// mismatches and records the numbers; it never gates on a speedup.
#include <atomic>
#include <cstdio>
#include <fstream>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "core/block_set.h"
#include "core/scan_kernels.h"
#include "storage/sharded_dataset.h"
#include "util/thread_pool.h"

namespace geoblocks::bench {
namespace {

constexpr size_t kShards = 8;

struct ModeStats {
  double ms = 0.0;
  double qps = 0.0;
};

/// Runs `threads` workers, each executing `rounds` passes over all
/// coverings through `select`, comparing every result bitwise against the
/// single-threaded reference.
template <typename SelectFn>
ModeStats RunMode(size_t threads, size_t rounds,
                  const std::vector<std::vector<cell::CellId>>& coverings,
                  const std::vector<core::QueryResult>& want,
                  std::atomic<uint64_t>* mismatches,
                  const SelectFn& select) {
  bench_util::Timer timer;
  std::vector<std::thread> workers;
  for (size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      for (size_t r = 0; r < rounds; ++r) {
        for (size_t i = 0; i < coverings.size(); ++i) {
          const core::QueryResult got = select(coverings[i]);
          if (got.count != want[i].count || got.values != want[i].values) {
            mismatches->fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
      (void)t;
    });
  }
  for (std::thread& w : workers) w.join();
  ModeStats stats;
  stats.ms = timer.ElapsedMs();
  const double queries =
      static_cast<double>(threads * rounds * coverings.size());
  stats.qps = queries / (stats.ms / 1000.0);
  return stats;
}

void Run() {
  bench_util::Banner(
      "Figure 21 — lock-free cached reads (beyond the paper)",
      "cached SELECT throughput at 1/2/4/8 threads: per-shard mutex "
      "baseline vs epoch-swapped snapshot path; identical frozen caches, "
      "bitwise-compared results.");
  const TaxiEnv env = TaxiEnv::Create(TaxiPoints());
  const core::AggregateRequest req = RequestN(7, env.data.num_columns());

  storage::ShardOptions shard_options;
  shard_options.num_shards = kShards;
  shard_options.align_level = kDefaultLevel;
  const storage::ShardedDataset sharded =
      storage::ShardedDataset::Partition(env.data, shard_options);
  core::BlockSet set =
      core::BlockSet::Build(sharded, core::BlockSetOptions{{kDefaultLevel, {}}});
  // Frozen snapshots (no interval): both modes probe identical tries.
  set.EnableCache(core::GeoBlockQC::Options{0.10, /*rebuild_interval=*/0});

  std::vector<std::vector<cell::CellId>> coverings;
  for (const geo::Polygon& poly : env.neighborhoods) {
    coverings.push_back(set.Cover(poly));
  }

  // Deterministic warm-up: record stats single-threaded, publish once.
  for (int round = 0; round < 2; ++round) {
    for (const auto& covering : coverings) {
      (void)set.SelectCoveringCached(covering, req);
    }
    set.RebuildCaches();
  }
  const core::CacheCounters warm = set.MergedCacheCounters();

  // Single-threaded reference answers off the frozen snapshots.
  std::vector<core::QueryResult> want;
  std::vector<uint64_t> want_counts;
  for (const auto& covering : coverings) {
    want.push_back(set.SelectCoveringCached(covering, req));
    want_counts.push_back(set.CountCovering(covering));
  }

  // Locked baseline: serialize every per-shard probe behind that shard's
  // mutex, reproducing the pre-PR *serialization structure*. (It runs the
  // new probe code under the lock, so it also pays the epoch-guard RMWs
  // the old code did not; the convoy effect being measured dominates, but
  // treat the speedup as approximate, not an exact before/after.)
  std::vector<std::unique_ptr<std::mutex>> shard_mu;
  for (size_t s = 0; s < set.num_shards(); ++s) {
    shard_mu.push_back(std::make_unique<std::mutex>());
  }
  const auto locked_select = [&](std::span<const cell::CellId> covering) {
    core::Accumulator acc(&req);
    thread_local std::vector<size_t> shards;
    set.OverlappingShards(covering, &shards);
    for (const size_t s : shards) {
      std::lock_guard<std::mutex> lock(*shard_mu[s]);
      set.cached_shard(s).CombineCovering(covering, &acc);
    }
    return acc.Finish();
  };
  const auto lockfree_select = [&](std::span<const cell::CellId> covering) {
    return set.SelectCoveringCached(covering, req);
  };

  // COUNT path sanity (bypasses the cache; always exact).
  uint64_t count_mismatches = 0;
  for (size_t i = 0; i < coverings.size(); ++i) {
    if (set.CountCovering(coverings[i]) != want_counts[i]) {
      ++count_mismatches;
    }
  }

  const size_t rounds = std::max<size_t>(1, bench_util::Scaled(8));
  const std::vector<size_t> thread_counts = {1, 2, 4, 8};
  std::atomic<uint64_t> mismatches{0};

  struct Row {
    size_t threads;
    ModeStats locked;
    ModeStats lockfree;
  };
  std::vector<Row> rows;
  bench_util::TablePrinter table({"threads", "locked ms", "lock-free ms",
                                  "locked qps", "lock-free qps", "speedup"});
  for (const size_t threads : thread_counts) {
    Row row;
    row.threads = threads;
    row.locked =
        RunMode(threads, rounds, coverings, want, &mismatches, locked_select);
    row.lockfree = RunMode(threads, rounds, coverings, want, &mismatches,
                           lockfree_select);
    rows.push_back(row);
    table.AddRow({std::to_string(threads),
                  bench_util::TablePrinter::Fmt(row.locked.ms, 1),
                  bench_util::TablePrinter::Fmt(row.lockfree.ms, 1),
                  bench_util::TablePrinter::Fmt(row.locked.qps, 0),
                  bench_util::TablePrinter::Fmt(row.lockfree.qps, 0),
                  bench_util::TablePrinter::Fmt(
                      row.lockfree.qps / row.locked.qps, 2)});
  }
  table.Print();
  std::printf(
      "hardware threads: %u, cache hit rate at warm-up: %.1f%%\n",
      std::thread::hardware_concurrency(), 100.0 * warm.HitRate());
  std::printf("kernel dispatch: %s, pool type: %s\n",
              core::kernels::ToString(core::kernels::ActiveDispatchLevel()),
              util::ThreadPool::pool_type());
  std::printf("result mismatches: %llu (select) + %llu (count)\n",
              static_cast<unsigned long long>(mismatches.load()),
              static_cast<unsigned long long>(count_mismatches));
  const uint64_t total_mismatches = mismatches.load() + count_mismatches;
  std::printf("mismatches: %llu\n",
              static_cast<unsigned long long>(total_mismatches));

  // Machine-readable record for CI trend tracking. Single-core runners
  // legitimately show speedup <= 1; the JSON records, it never gates.
  std::ofstream json("BENCH_concurrency.json");
  json << "{\n"
       << "  \"bench\": \"fig21_concurrency\",\n"
       << "  \"hardware_concurrency\": "
       << std::thread::hardware_concurrency() << ",\n"
       << "  \"kernel_dispatch\": \""
       << core::kernels::ToString(core::kernels::ActiveDispatchLevel())
       << "\",\n"
       << "  \"pool_type\": \"" << util::ThreadPool::pool_type() << "\",\n"
       << "  \"shards\": " << kShards << ",\n"
       << "  \"queries_per_round\": " << coverings.size() << ",\n"
       << "  \"rounds\": " << rounds << ",\n"
       << "  \"warm_hit_rate\": " << warm.HitRate() << ",\n"
       << "  \"mismatches\": " << total_mismatches << ",\n"
       << "  \"results\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    json << "    {\"threads\": " << r.threads
         << ", \"locked_ms\": " << r.locked.ms
         << ", \"lockfree_ms\": " << r.lockfree.ms
         << ", \"locked_qps\": " << r.locked.qps
         << ", \"lockfree_qps\": " << r.lockfree.qps << "}"
         << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::printf("wrote BENCH_concurrency.json\n");

  PaperNote(
      "the adaptive cache of Section 4.3 was evaluated single-threaded; "
      "this figure extends it to the serving setting: with epoch-swapped "
      "snapshots the cached read path scales with reader threads instead "
      "of convoying on per-shard mutexes, at bit-identical answers.");
}

}  // namespace
}  // namespace geoblocks::bench

int main() {
  geoblocks::bench::Run();
  return 0;
}
