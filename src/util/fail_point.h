#pragma once

#include <atomic>
#include <cstdint>

namespace geoblocks::util {

/// Crash-fault injection for durability code: a byte-granular budget that an
/// instrumented write path consults before touching the disk, so a test can
/// "crash" a writer at any offset of its output — mid record header, mid
/// payload, exactly on a record boundary — without killing the process.
///
/// Two triggers model the two interesting crash classes:
///
/// - **Byte budget** (`ArmAfterBytes`): the next `n` bytes pass through and
///   hit the file; everything after is refused. This simulates power loss
///   mid-write — the file keeps the prefix that was already written (a torn
///   tail), and the writer observes the failure *before* acknowledging.
/// - **Sync budget** (`ArmAfterSyncs`): the next `n` fsync calls complete
///   normally, then the fail point trips *after* the nth sync returns —
///   the data is durable but the writer dies before acknowledging. This is
///   the "crash between fsync and ack" window: recovery replays a batch the
///   client never saw confirmed, which is the at-least-once edge the
///   recovery suite pins.
///
/// Once either trigger fires the fail point stays `triggered()` (and the
/// instrumented writer stays dead, like a crashed process) until `Disarm`.
/// All operations are atomic; the instrumented path may be multi-threaded.
class FailPoint {
 public:
  static constexpr uint64_t kUnlimited = ~uint64_t{0};

  /// Allows exactly `n` more bytes through `AdmitBytes`, then trips.
  void ArmAfterBytes(uint64_t n) {
    bytes_remaining_.store(n, std::memory_order_relaxed);
    triggered_.store(false, std::memory_order_relaxed);
  }

  /// Allows exactly `n` more fsyncs to be acknowledged; the (n+1)th sync
  /// completes (its bytes ARE durable) but `AdmitSync` returns false, so
  /// the writer dies between the sync and the acknowledgment.
  void ArmAfterSyncs(uint64_t n) {
    syncs_remaining_.store(n, std::memory_order_relaxed);
    triggered_.store(false, std::memory_order_relaxed);
  }

  /// Removes both budgets; the fail point admits everything again.
  void Disarm() {
    bytes_remaining_.store(kUnlimited, std::memory_order_relaxed);
    syncs_remaining_.store(kUnlimited, std::memory_order_relaxed);
    triggered_.store(false, std::memory_order_relaxed);
  }

  /// @return True once a budget was exhausted (the simulated crash fired).
  bool triggered() const { return triggered_.load(std::memory_order_relaxed); }

  /// Called by the instrumented write path with the byte count it is about
  /// to write. Returns how many of those bytes may actually be written
  /// (the rest of the write "never reached the disk"); a return smaller
  /// than `want` — including 0 — means the crash fired and the writer must
  /// fail after persisting only the admitted prefix.
  ///
  /// @param want Bytes the caller intends to write.
  /// @return Bytes admitted, in [0, want].
  uint64_t AdmitBytes(uint64_t want) {
    if (triggered()) return 0;
    uint64_t remaining = bytes_remaining_.load(std::memory_order_relaxed);
    while (true) {
      if (remaining == kUnlimited) return want;
      const uint64_t admit = remaining < want ? remaining : want;
      if (bytes_remaining_.compare_exchange_weak(remaining, remaining - admit,
                                                 std::memory_order_relaxed)) {
        if (admit < want) triggered_.store(true, std::memory_order_relaxed);
        return admit;
      }
    }
  }

  /// Called by the instrumented path after an fsync *completes*. Returns
  /// false when the crash fires at this point: the synced bytes are durable
  /// but the writer must die before acknowledging them.
  ///
  /// @return True to continue; false to simulate a crash post-sync.
  bool AdmitSync() {
    if (triggered()) return false;
    uint64_t remaining = syncs_remaining_.load(std::memory_order_relaxed);
    while (true) {
      if (remaining == kUnlimited) return true;
      if (remaining == 0) {
        triggered_.store(true, std::memory_order_relaxed);
        return false;
      }
      if (syncs_remaining_.compare_exchange_weak(remaining, remaining - 1,
                                                 std::memory_order_relaxed)) {
        return true;
      }
    }
  }

 private:
  std::atomic<uint64_t> bytes_remaining_{kUnlimited};
  std::atomic<uint64_t> syncs_remaining_{kUnlimited};
  std::atomic<bool> triggered_{false};
};

}  // namespace geoblocks::util
