#pragma once

/// \file client.h
/// A small blocking client for the query server, used by the test suites
/// (tests/server_*_test.cc), the serving benchmark (bench/fig23_serving),
/// and the quickstart (examples/serve.cc). One request in flight at a
/// time: each typed call encodes a frame, sends it, and blocks for the
/// matching response (cookies are verified). The raw frame entry points
/// (SendBytes / ReadResponse) are the protocol-fuzzing surface — they let
/// a test write arbitrary garbage and observe exactly how the server
/// answers and closes.

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/aggregate.h"
#include "core/geoblock.h"
#include "geo/polygon.h"
#include "server/protocol.h"

namespace geoblocks::server {

/// Thrown by the typed calls when the server answers a non-OK status
/// (kBusy, kThrottled, kGreylisted, kInternal, ...).
struct ServerError : std::runtime_error {
  explicit ServerError(Status s)
      : std::runtime_error("geoblocks: server answered " +
                           std::string(ToString(s))),
        status(s) {}
  Status status;
};

/// A blocking TCP client. Move-only; the socket closes on destruction.
class Client {
 public:
  struct Options {
    uint32_t tenant = 0;  ///< tenant id stamped on every request
    size_t max_frame_bytes = kDefaultMaxFrameBytes;
  };

  /// Connects to 127.0.0.1:`port`.
  /// @throws std::runtime_error when the connection fails.
  static Client Connect(uint16_t port, const Options& options);
  /// Connect with default Options (an overload: a default argument cannot
  /// use the nested aggregate's member initializers inside the class).
  static Client Connect(uint16_t port) { return Connect(port, Options()); }

  ~Client();
  Client(Client&& o) noexcept;
  Client& operator=(Client&& o) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Health check; the server echoes `payload`.
  /// @return The echoed payload.
  std::string Ping(std::string_view payload = {});

  /// SELECT. Doubles round-trip bit-identically, so the result can be
  /// compared `==` against a direct BlockSet::Select.
  /// @throws ServerError on a non-OK status.
  core::QueryResult Select(const geo::Polygon& polygon,
                           const core::AggregateRequest& request);

  /// COUNT.
  /// @throws ServerError on a non-OK status.
  uint64_t Count(const geo::Polygon& polygon);

  /// UPDATE. An OK return means the batch is durable when the server has
  /// a WAL attached (persist-first carried through the wire).
  /// @throws ServerError on a non-OK status — kInternal means the outcome
  ///     is UNKNOWN (the server's log died); only an OK is an ack.
  UpdateAck Update(std::span<const core::GeoBlock::UpdateTuple> tuples);

  /// STATS: the server's counters plus per-tenant audit counters.
  std::vector<std::pair<std::string, uint64_t>> Stats();

  // -- Raw access (protocol tests) -----------------------------------------

  /// Writes raw bytes to the socket (no framing added).
  /// @throws std::runtime_error on a write error.
  void SendBytes(std::string_view bytes);

  /// Reads one response frame.
  /// @param out Receives the decoded response.
  /// @return False on clean EOF (the server closed the connection).
  /// @throws std::runtime_error on a torn frame or an oversized length.
  bool ReadResponse(Response* out);

  /// Half-closes the write side (the server's reader sees EOF).
  void ShutdownWrite();

  /// @return The socket fd (tests only).
  int fd() const { return fd_; }

 private:
  explicit Client(int fd, const Options& options)
      : fd_(fd), options_(options) {}

  /// Sends `frame` and blocks for the response with `cookie`; throws
  /// ServerError on a non-OK status.
  Response Call(const std::string& frame, uint64_t cookie);

  int fd_ = -1;
  Options options_;
  uint64_t next_cookie_ = 1;
};

}  // namespace geoblocks::server
