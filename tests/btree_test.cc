#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "index/btree.h"

namespace geoblocks::index {
namespace {

std::vector<uint64_t> RandomSortedKeys(size_t n, uint64_t seed,
                                       uint64_t max_key = uint64_t{1} << 61) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<uint64_t> dist(0, max_key - 1);
  std::vector<uint64_t> keys(n);
  for (auto& k : keys) k = dist(rng);
  std::sort(keys.begin(), keys.end());
  return keys;
}

TEST(BTreeTest, EmptyTree) {
  const BTree tree = BTree::BulkLoad({});
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.SeekFirst(123), 0u);
  EXPECT_EQ(tree.SeekPastLast(123), 0u);
}

TEST(BTreeTest, SingleEntry) {
  const BTree tree = BTree::BulkLoad({42});
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ(tree.SeekFirst(0), 0u);
  EXPECT_EQ(tree.SeekFirst(42), 0u);
  EXPECT_EQ(tree.SeekFirst(43), 1u);
  EXPECT_EQ(tree.SeekPastLast(42), 1u);
  EXPECT_EQ(tree.SeekPastLast(41), 0u);
}

TEST(BTreeTest, SeekMatchesLowerBound) {
  const auto keys = RandomSortedKeys(20000, 1);
  const BTree tree = BTree::BulkLoad(keys);
  EXPECT_GT(tree.height(), 1u);
  std::mt19937_64 rng(2);
  std::uniform_int_distribution<uint64_t> dist(0, uint64_t{1} << 61);
  for (int t = 0; t < 5000; ++t) {
    const uint64_t probe = dist(rng);
    const size_t expected = static_cast<size_t>(
        std::lower_bound(keys.begin(), keys.end(), probe) - keys.begin());
    ASSERT_EQ(tree.SeekFirst(probe), expected) << "probe " << probe;
  }
}

TEST(BTreeTest, SeekExistingKeys) {
  const auto keys = RandomSortedKeys(5000, 3);
  const BTree tree = BTree::BulkLoad(keys);
  for (size_t i = 0; i < keys.size(); i += 13) {
    const size_t pos = tree.SeekFirst(keys[i]);
    ASSERT_LE(pos, i);
    ASSERT_EQ(keys[pos], keys[i]);
    if (pos > 0) {
      ASSERT_LT(keys[pos - 1], keys[i]);
    }
  }
}

TEST(BTreeTest, DuplicateKeys) {
  std::vector<uint64_t> keys;
  for (int i = 0; i < 100; ++i) {
    for (int d = 0; d < 7; ++d) keys.push_back(100 + 10 * i);
  }
  const BTree tree = BTree::BulkLoad(keys);
  // SeekFirst lands on the first duplicate.
  for (int i = 0; i < 100; ++i) {
    const uint64_t k = 100 + 10 * i;
    EXPECT_EQ(tree.SeekFirst(k), static_cast<size_t>(i) * 7);
    EXPECT_EQ(tree.SeekPastLast(k), static_cast<size_t>(i + 1) * 7);
  }
}

TEST(BTreeTest, RangeCountsMatchScan) {
  const auto keys = RandomSortedKeys(10000, 4, 100000);
  const BTree tree = BTree::BulkLoad(keys);
  std::mt19937_64 rng(5);
  for (int t = 0; t < 500; ++t) {
    uint64_t lo = rng() % 100000;
    uint64_t hi = rng() % 100000;
    if (lo > hi) std::swap(lo, hi);
    const size_t first = tree.SeekFirst(lo);
    const size_t last = tree.SeekPastLast(hi);
    size_t expected = 0;
    for (uint64_t k : keys) {
      if (k >= lo && k <= hi) ++expected;
    }
    ASSERT_EQ(last - first, expected);
  }
}

TEST(BTreeTest, SeekPastLastMaxKey) {
  const auto keys = RandomSortedKeys(1000, 6);
  const BTree tree = BTree::BulkLoad(keys);
  EXPECT_EQ(tree.SeekPastLast(UINT64_MAX), keys.size());
}

TEST(BTreeTest, MemoryGrowsWithEntries) {
  const BTree small = BTree::BulkLoad(RandomSortedKeys(1000, 7));
  const BTree large = BTree::BulkLoad(RandomSortedKeys(100000, 8));
  EXPECT_GT(small.MemoryBytes(), 0u);
  EXPECT_GT(large.MemoryBytes(), small.MemoryBytes());
  // Overhead is roughly 12 bytes per entry (key + offset) plus inner nodes.
  EXPECT_LT(large.MemoryBytes(), 100000u * 24);
}

class BTreeSizeTest : public ::testing::TestWithParam<size_t> {};

TEST_P(BTreeSizeTest, BoundaryProbes) {
  const auto keys = RandomSortedKeys(GetParam(), 42 + GetParam());
  const BTree tree = BTree::BulkLoad(keys);
  ASSERT_EQ(tree.size(), GetParam());
  if (keys.empty()) return;
  EXPECT_EQ(tree.SeekFirst(0), 0u);
  EXPECT_EQ(tree.SeekFirst(keys.front()), 0u);
  const size_t at_back = tree.SeekFirst(keys.back());
  ASSERT_LT(at_back, keys.size());
  EXPECT_EQ(keys[at_back], keys.back());
  EXPECT_EQ(tree.SeekFirst(keys.back() + 1), keys.size());
}

INSTANTIATE_TEST_SUITE_P(Sizes, BTreeSizeTest,
                         ::testing::Values(1, 2, 63, 64, 65, 4095, 4096,
                                           4097, 50000));

}  // namespace
}  // namespace geoblocks::index
