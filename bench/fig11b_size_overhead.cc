// Reproduces Figure 11b: relative size overhead of each structure compared
// to the raw columnar payload (BinarySearch omitted: zero overhead).
#include "bench/common.h"
#include "index/artree.h"
#include "index/btree_index.h"
#include "index/phtree.h"

namespace geoblocks::bench {
namespace {

void Run() {
  bench_util::Banner("Figure 11b — relative size overhead",
                     "Index bytes / raw payload bytes; block level 17.");
  const storage::PointTable raw = workload::GenTaxi(TaxiPoints());
  storage::ExtractOptions options;
  options.clean_bounds = workload::NycBounds();
  const auto data = storage::SortedDataset::Extract(raw, options);
  const double payload = static_cast<double>(data.PayloadBytes());

  const core::GeoBlock block =
      core::GeoBlock::Build(data, {kDefaultLevel, {}});
  const index::BTreeIndex bt(&data);
  const index::PhTreeIndex ph(&data);

  // The aR-tree is built on a subset (its insertion build is slow by
  // design) — relative overhead is size-stable enough for the comparison.
  const size_t art_points = std::min<size_t>(data.num_rows(), 250'000);
  const storage::PointTable art_raw = workload::GenTaxi(art_points);
  const auto art_data = storage::SortedDataset::Extract(art_raw, options);
  const index::ARTree art = index::ARTree::Build(&art_data);
  const double art_overhead = static_cast<double>(art.MemoryBytes()) /
                              static_cast<double>(art_data.PayloadBytes());

  bench_util::TablePrinter table({"algorithm", "overhead %"});
  const auto pct = [](double frac) {
    return bench_util::TablePrinter::Fmt(100.0 * frac, 1) + "%";
  };
  table.AddRow({"Block", pct(block.MemoryBytes() / payload)});
  table.AddRow({"BTree", pct(bt.MemoryBytes() / payload)});
  table.AddRow({"PHTree", pct(ph.MemoryBytes() / payload)});
  table.AddRow({"aRTree", pct(art_overhead)});
  table.Print();
  PaperNote(
      "paper reports Block 45%, BTree 21%, PHTree 54%, aRTree 3%: the "
      "point indices pay per point, the aR-tree amortizes 16-way nodes, "
      "and the Block pays per non-empty level-17 cell.");
}

}  // namespace
}  // namespace geoblocks::bench

int main() { geoblocks::bench::Run(); }
