#pragma once

#include <map>
#include <memory>
#include <string>
#include <utility>

#include "core/geoblock.h"

namespace geoblocks::core {

/// Chooses the coarsest block level whose cell diagonal (the worst-case
/// spatial error, Section 3.2) does not exceed `max_error_meters` at
/// latitude `lat`. This is how "the user can specify the error bound by
/// choosing an appropriate cell level".
int LevelForErrorBound(double max_error_meters, double lat = 40.7);

/// A catalog of GeoBlocks over one extracted dataset — the materialized-
/// view manager implied by the paper's pipeline (Figure 5): the extract
/// phase runs once; blocks for new (filter, level) combinations are built
/// incrementally from the sorted base data on demand and reused afterwards.
class BlockCatalog {
 public:
  /// Catalog over a dataset window. An owning view keeps the base data
  /// alive for as long as the catalog (and its blocks) exist.
  explicit BlockCatalog(storage::DatasetView data) : data_(std::move(data)) {}

  /// Borrowing convenience: `data` must outlive the catalog.
  explicit BlockCatalog(const storage::SortedDataset* data)
      : BlockCatalog(storage::DatasetView::Unowned(*data)) {}

  const storage::DatasetView& data() const { return data_; }

  /// Returns the block for the exact (filter, level) combination, building
  /// it on first use (an *incremental* build in the paper's terms).
  const GeoBlock& GetOrBuild(const BlockOptions& options);

  /// Returns a block for `filter` satisfying the spatial error bound: an
  /// existing block with the same filter and a level at least as fine is
  /// reused (a finer grid only reduces the error); otherwise the block at
  /// exactly the required level is built.
  const GeoBlock& ForErrorBound(const storage::Filter& filter,
                                double max_error_meters);

  /// True when the combination is already materialized.
  bool Contains(const BlockOptions& options) const;

  /// Drops one materialized block; returns whether it existed.
  bool Drop(const BlockOptions& options);

  size_t num_blocks() const { return blocks_.size(); }

  /// Bytes across all materialized blocks (excluding the base data).
  size_t TotalMemoryBytes() const;

  /// Canonical key of a (filter, level) combination; exposed for tests.
  static std::string KeyOf(const BlockOptions& options);

 private:
  storage::DatasetView data_;
  // Key -> block. unique_ptr keeps GeoBlock* stable across rehashing so
  // callers (e.g. GeoBlockQC) can hold on to the returned reference.
  std::map<std::string, std::unique_ptr<GeoBlock>> blocks_;
};

}  // namespace geoblocks::core
