#include "core/block_set.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "io/update_log.h"

namespace geoblocks::core {

BlockSet::~BlockSet() {
  // Governor entries first: Unregister waits out in-flight evict callbacks,
  // which hold the per-shard records this destructor is about to drop.
  UnregisterGovernorEntries();
  NeutralizeWriters();
}

BlockSet::BlockSet(BlockSet&& other) noexcept
    : level_(other.level_),
      projection_(other.projection_),
      blocks_(std::move(other.blocks_)),
      cached_(std::move(other.cached_)),
      writers_(std::move(other.writers_)),
      update_options_(other.update_options_),
      align_level_(other.align_level_),
      total_rows_(other.total_rows_),
      boundaries_(std::move(other.boundaries_)),
      windows_(std::move(other.windows_)),
      dataset_attached_(other.dataset_attached_),
      // The governor callbacks captured the stable per-shard records
      // (block addresses, writer/residency shared_ptrs), never `other`,
      // so the registered entries survive the move untouched.
      source_(std::move(other.source_)),
      residency_(std::move(other.residency_)),
      governor_(other.governor_),
      log_(other.log_),
      change_number_(
          other.change_number_.load(std::memory_order_relaxed)),
      read_only_(other.read_only_.load(std::memory_order_relaxed)) {
  other.governor_ = nullptr;
  other.log_ = nullptr;
}

BlockSet& BlockSet::operator=(BlockSet&& other) noexcept {
  if (this == &other) return *this;
  UnregisterGovernorEntries();
  NeutralizeWriters();
  level_ = other.level_;
  projection_ = other.projection_;
  blocks_ = std::move(other.blocks_);
  cached_ = std::move(other.cached_);
  writers_ = std::move(other.writers_);
  update_options_ = other.update_options_;
  align_level_ = other.align_level_;
  total_rows_ = other.total_rows_;
  boundaries_ = std::move(other.boundaries_);
  windows_ = std::move(other.windows_);
  dataset_attached_ = other.dataset_attached_;
  source_ = std::move(other.source_);
  residency_ = std::move(other.residency_);
  governor_ = other.governor_;
  other.governor_ = nullptr;
  log_ = other.log_;
  other.log_ = nullptr;
  change_number_.store(other.change_number_.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
  read_only_.store(other.read_only_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  return *this;
}

void BlockSet::NeutralizeWriters() {
  // Flip every per-shard gate dead: a background merge already inside its
  // gate finishes first (the lock waits it out); every merge still queued
  // locks, sees dead, and skips — it holds the gate, never the set.
  for (const std::shared_ptr<ShardWriter>& w : writers_) {
    if (w == nullptr) continue;
    std::lock_guard<std::mutex> lock(w->mu);
    w->alive = false;
  }
}

BlockSet BlockSet::Build(const storage::ShardedDataset& shards,
                         const BlockSetOptions& options,
                         util::ThreadPool* pool) {
  BlockSet set;
  set.level_ = options.block.level;
  const size_t k = shards.num_shards();
  set.blocks_.reserve(k);
  set.writers_.reserve(k);
  for (size_t i = 0; i < k; ++i) {
    set.blocks_.push_back(std::make_unique<GeoBlock>());
    set.writers_.push_back(std::make_shared<ShardWriter>());
  }
  if (k == 0) return set;
  set.projection_ = shards.shard(0).projection();

  // Record the partition manifest: boundaries, row windows, alignment.
  // These are exactly the fields WriteTo persists and AttachDataset
  // validates a dataset against after a load.
  set.align_level_ = shards.align_level();
  set.boundaries_ = shards.boundaries();
  set.windows_.reserve(k);
  for (size_t i = 0; i < k; ++i) {
    const storage::DatasetView& view = shards.shard(i);
    set.windows_.push_back({view.offset(), view.num_rows()});
  }
  set.total_rows_ = shards.total_rows();
  set.dataset_attached_ = true;

  const auto build_one = [&](size_t i) {
    *set.blocks_[i] = GeoBlock::Build(shards.shard(i), options.block);
  };
  if (pool != nullptr) {
    pool->ParallelFor(k, build_one);
  } else {
    for (size_t i = 0; i < k; ++i) build_one(i);
  }
  return set;
}

size_t BlockSet::num_cells() const {
  // Pin each shard's state: this is a read path and must stay safe
  // concurrently with update commits (the raw GeoBlock accessors are
  // writer-quiesced only). A lazy set faults cold shards in — counting
  // cells needs every payload — and rebalances once at the end.
  size_t cells = 0;
  for (size_t s = 0; s < blocks_.size(); ++s) {
    const std::shared_ptr<const BlockState> state =
        source_ != nullptr ? ResidentState(s, /*rebalance=*/false)
                           : blocks_[s]->StateSnapshot();
    cells += state->num_cells();
  }
  if (source_ != nullptr && governor_ != nullptr) governor_->EnsureBudget();
  return cells;
}

BlockHeader BlockSet::MergedHeader() const {
  BlockHeader header;
  header.level = level_;
  size_t columns = 0;
  for (const std::unique_ptr<GeoBlock>& b : blocks_) {
    columns = std::max(columns, b->num_columns());
  }
  header.global = AggregateVector(columns);
  bool any = false;
  // One pinned version per shard (not the unpinned header() peek): a
  // monitoring thread may merge headers while commits publish successors.
  // On a lazy set cold shards fault in — the merged global aggregate
  // needs every shard's payload.
  for (size_t s = 0; s < blocks_.size(); ++s) {
    const std::shared_ptr<const BlockState> state =
        source_ != nullptr ? ResidentState(s, /*rebalance=*/false)
                           : blocks_[s]->StateSnapshot();
    if (state->num_cells() == 0) continue;
    if (!any) {
      header.min_cell = state->header.min_cell;
      header.max_cell = state->header.max_cell;
      any = true;
    } else {
      header.min_cell = std::min(header.min_cell, state->header.min_cell);
      header.max_cell = std::max(header.max_cell, state->header.max_cell);
    }
    header.global.Merge(state->header.global);
  }
  if (source_ != nullptr && governor_ != nullptr) governor_->EnsureBudget();
  return header;
}

size_t BlockSet::MemoryBytes() const {
  size_t bytes = 0;
  for (const std::unique_ptr<GeoBlock>& b : blocks_) {
    bytes += b->MemoryBytes();
  }
  return bytes;
}

std::vector<cell::CellId> BlockSet::Cover(const geo::Polygon& polygon) const {
  return CoverPolygon(projection_, level_, polygon);
}

void BlockSet::CoverInto(const geo::Polygon& polygon,
                         std::vector<cell::CellId>* out) const {
  CoverPolygonInto(projection_, level_, polygon, out);
}

std::vector<size_t> BlockSet::OverlappingShards(
    std::span<const cell::CellId> covering) const {
  std::vector<size_t> result;
  OverlappingShards(covering, &result);
  return result;
}

void BlockSet::OverlappingShards(std::span<const cell::CellId> covering,
                                 std::vector<size_t>* out) const {
  std::vector<size_t>& result = *out;
  result.clear();
  if (covering.empty()) return;
  result.reserve(blocks_.size());
  for (size_t s = 0; s < blocks_.size(); ++s) {
    const GeoBlock& b = *blocks_[s];
    if (source_ != nullptr &&
        !residency_[s]->hull_known.load(std::memory_order_acquire)) {
      // Never-materialized lazy shard: its routing hull is unknown, so
      // route by the manifest boundary range instead — conservative (a
      // wrongly included shard materializes, folds nothing, and tightens
      // its own routing for next time) but it can never exclude a shard
      // that could answer. Shard s holds keys [b[s], b[s+1]), the last
      // shard inclusive of the end key.
      constexpr uint64_t kEndKey = ~uint64_t{0};
      const uint64_t lo = boundaries_[s];
      const uint64_t hi = boundaries_[s + 1];
      const auto it = std::lower_bound(
          covering.begin(), covering.end(), lo,
          [](const cell::CellId& c, uint64_t key) {
            return c.RangeMax().id() < key;
          });
      if (it == covering.end()) continue;
      if (hi == kEndKey || it->RangeMin().id() < hi) result.push_back(s);
      continue;
    }
    // Routing reads the lock-free atomic mirror of each shard's key hull,
    // never a pinned state: safe concurrently with update commits (a
    // racing merge can shift the hull; MayOverlap documents why any tear
    // is benign for routing). An evicted shard keeps its hull (EvictState
    // leaves the routing atomics), so cold-but-known shards route
    // precisely without faulting in.
    if (!b.has_cells()) continue;
    // Covering cells are disjoint and sorted, so their leaf ranges ascend:
    // binary-search the first cell whose range reaches the shard, then a
    // single comparison decides the overlap (the shard-level BlockHeader
    // pre-check).
    const uint64_t min_cell = b.routing_min_cell();
    const uint64_t max_cell = b.routing_max_cell();
    const auto it = std::lower_bound(
        covering.begin(), covering.end(), min_cell,
        [](const cell::CellId& c, uint64_t key) {
          return c.RangeMax().id() < key;
        });
    if (it == covering.end()) continue;
    if (it->RangeMin().id() <= max_cell) result.push_back(s);
  }
}

QueryResult BlockSet::Select(const geo::Polygon& polygon,
                             const AggregateRequest& request) const {
  thread_local std::vector<cell::CellId> covering;
  CoverInto(polygon, &covering);
  return SelectCovering(covering, request);
}

QueryResult BlockSet::SelectCovering(std::span<const cell::CellId> covering,
                                     const AggregateRequest& request) const {
  thread_local std::vector<size_t> shards;
  OverlappingShards(covering, &shards);
  Accumulator acc(&request);
  // Each shard folds its whole covering contribution under one pinned
  // state version (GeoBlock::CombineCovering); shards ascend, so the fold
  // order matches a single block over the same data bit for bit. On a
  // lazy set the pin comes from ResidentState, which faults cold shards
  // in first — the fold never sees a tombstone, so answers stay
  // bit-identical to the fully resident set.
  for (const size_t s : shards) {
    if (source_ != nullptr) {
      ResidentState(s, /*rebalance=*/true)->CombineCovering(covering, &acc);
    } else {
      blocks_[s]->CombineCovering(covering, &acc);
    }
  }
  return acc.Finish();
}

uint64_t BlockSet::Count(const geo::Polygon& polygon) const {
  thread_local std::vector<cell::CellId> covering;
  CoverInto(polygon, &covering);
  return CountCovering(covering);
}

uint64_t BlockSet::CountCovering(
    std::span<const cell::CellId> covering) const {
  thread_local std::vector<size_t> shards;
  OverlappingShards(covering, &shards);
  uint64_t result = 0;
  for (const size_t s : shards) {
    if (source_ != nullptr) {
      result += ResidentState(s, /*rebalance=*/true)->CountCovering(covering);
    } else {
      result += blocks_[s]->CountCovering(covering);
    }
  }
  return result;
}

std::vector<QueryResult> BlockSet::ExecuteBatch(const QueryBatch& batch,
                                                util::ThreadPool* pool) const {
  const AggregateRequest& request = *batch.request;
  const size_t q = batch.size();
  std::vector<QueryResult> results(q);
  if (q == 0) return results;

  // Phase 1: cover all polygons (independent, parallel).
  std::vector<std::vector<cell::CellId>> coverings(q);
  const auto cover_one = [&](size_t i) {
    coverings[i] = Cover(*batch.polygons[i]);
  };
  if (pool != nullptr) {
    pool->ParallelFor(q, cover_one);
  } else {
    for (size_t i = 0; i < q; ++i) cover_one(i);
  }

  // Phase 2: one task per (query, overlapping shard). Partial accumulators
  // are pre-allocated per task and merged in a fixed order afterwards, so
  // the result never depends on scheduling.
  struct Part {
    size_t query;
    size_t shard;
  };
  std::vector<Part> parts;
  std::vector<size_t> first_part(q + 1, 0);
  std::vector<size_t> shards;
  for (size_t i = 0; i < q; ++i) {
    first_part[i] = parts.size();
    OverlappingShards(coverings[i], &shards);
    for (const size_t s : shards) {
      parts.push_back({i, s});
    }
  }
  first_part[q] = parts.size();

  std::vector<Accumulator> partials(parts.size(), Accumulator(&request));
  const auto run_part = [&](size_t p) {
    const Part& part = parts[p];
    if (source_ != nullptr) {
      // Admission-time fault-in: the pool worker that admits this
      // (query, shard) task pays the shard's materialization, so cold
      // shards hydrate in parallel across the work-stealing pool.
      ResidentState(part.shard, /*rebalance=*/true)
          ->CombineCovering(coverings[part.query], &partials[p]);
    } else {
      blocks_[part.shard]->CombineCovering(coverings[part.query],
                                           &partials[p]);
    }
  };
  if (pool != nullptr) {
    pool->ParallelFor(parts.size(), run_part);
  } else {
    for (size_t p = 0; p < parts.size(); ++p) run_part(p);
  }

  // Phase 3: deterministic merge — per query, shards in ascending order
  // (parts were emitted that way).
  for (size_t i = 0; i < q; ++i) {
    Accumulator acc(&request);
    for (size_t p = first_part[i]; p < first_part[i + 1]; ++p) {
      acc.Merge(partials[p]);
    }
    results[i] = acc.Finish();
  }
  return results;
}

std::vector<uint64_t> BlockSet::CountBatch(
    std::span<const geo::Polygon* const> polygons,
    util::ThreadPool* pool) const {
  const size_t q = polygons.size();
  std::vector<uint64_t> results(q, 0);
  const auto count_one = [&](size_t i) { results[i] = Count(*polygons[i]); };
  if (pool != nullptr) {
    pool->ParallelFor(q, count_one);
  } else {
    for (size_t i = 0; i < q; ++i) count_one(i);
  }
  return results;
}

// ---------------------------------------------------------------------------
// The update plane
// ---------------------------------------------------------------------------

BlockSet::SetUpdateResult BlockSet::ApplyBatchUpdate(
    std::span<const GeoBlock::UpdateTuple> batch, util::ThreadPool* pool) {
  const size_t k = blocks_.size();
  if (k == 0 || boundaries_.size() != k + 1 || writers_.size() != k) {
    throw std::logic_error(
        "BlockSet::ApplyBatchUpdate: set has no manifest metadata (only "
        "sets from Build or ReadFrom can be updated)");
  }
  if (batch.empty()) {
    SetUpdateResult result;
    result.pending_after = PendingUpdateCount();
    result.change_number = change_number();
    return result;
  }

  // Fault containment: a set whose log died is degraded read-only, and
  // the rejection happens HERE — before the log, before memory — so the
  // caller knows the batch was definitely not applied (unlike the
  // unknown-outcome failure that caused the degradation).
  if (read_only()) throw ReadOnlyError();

  // Durability first: with a log attached, the batch becomes a fsync'd WAL
  // record BEFORE it touches memory — Append blocks until the group
  // commits (or throws, in which case nothing was acknowledged and nothing
  // committed). Without a log, the change number only orders batches in
  // memory.
  uint64_t cn = 0;
  if (log_ != nullptr) {
    try {
      cn = log_->Append(batch);
    } catch (...) {
      // The log is dead (fsync error, ENOSPC, EIO, injected crash) and is
      // never retried: flip the set into sticky degraded read-only mode.
      // This in-flight batch still propagates the original unknown-outcome
      // error — it may or may not be durable — while every later update is
      // fenced off with the typed ReadOnlyError above. Reads are untouched.
      if (log_->failed()) EnterReadOnly();
      throw;
    }
  }

  SetUpdateResult result = CommitRouted(batch, pool);
  if (cn == 0) {
    cn = change_number_.fetch_add(1, std::memory_order_acq_rel) + 1;
  } else {
    AdoptChangeNumber(cn);
  }
  result.change_number = cn;
  return result;
}

void BlockSet::AdoptChangeNumber(uint64_t cn) {
  uint64_t current = change_number_.load(std::memory_order_relaxed);
  while (current < cn &&
         !change_number_.compare_exchange_weak(current, cn,
                                               std::memory_order_acq_rel)) {
  }
}

BlockSet::SetUpdateResult BlockSet::CommitRouted(
    std::span<const GeoBlock::UpdateTuple> batch, util::ThreadPool* pool) {
  const size_t k = blocks_.size();
  SetUpdateResult result;

  // Phase 1: route every tuple to its shard by Hilbert key against the
  // manifest boundaries — the same rule the partitioner cut the data with,
  // so a tuple lands in the shard whose block covers (or will cover) its
  // cell. Routing reads only immutable fields; no locks. Tuples are routed
  // by *index*, not copied — copying an UpdateTuple allocates (its values
  // vector), so copies happen only on the rejection slow path. The scratch
  // is thread-local: its capacity survives across batches, making the
  // steady-state route allocation-free.
  struct RouteScratch {
    std::vector<std::vector<uint32_t>> per_shard;  ///< batch indices
    std::vector<size_t> busy;                      ///< shards with tuples
  };
  thread_local RouteScratch scratch;
  if (scratch.per_shard.size() < k) scratch.per_shard.resize(k);
  for (size_t s = 0; s < k; ++s) scratch.per_shard[s].clear();
  scratch.busy.clear();
  for (size_t b = 0; b < batch.size(); ++b) {
    const uint64_t key =
        cell::CellId::FromPoint(projection_.ToUnit(batch[b].location)).id();
    const size_t s = storage::ShardForKey(boundaries_, key);
    if (scratch.per_shard[s].empty()) scratch.busy.push_back(s);
    scratch.per_shard[s].push_back(static_cast<uint32_t>(b));
  }
  // Deterministic commit order on the inline path (parallel commits are
  // unordered anyway; shards are disjoint, so results never depend on it).
  std::sort(scratch.busy.begin(), scratch.busy.end());

  // Phase 2: commit each busy shard's index slice under that shard's
  // commit lock — striped writers, parallel across shards on the pool.
  // Readers never block: each commit is an epoch-swap publish. The lambda
  // must reach the *submitting* thread's scratch through ordinary local
  // references: a thread_local named inside a lambda is re-resolved in the
  // executing thread, and a pool worker's own scratch is empty. ParallelFor
  // completes before returning, so the references stay stable.
  std::vector<std::vector<uint32_t>>& per_shard = scratch.per_shard;
  std::vector<size_t>& busy = scratch.busy;
  std::atomic<size_t> applied{0};
  std::atomic<size_t> buffered{0};
  std::atomic<size_t> rebuilds{0};
  const auto commit_one = [&](size_t i) {
    const size_t s = busy[i];
    CommitShardBatch(s, batch, per_shard[s], &applied, &buffered,
                     &rebuilds);
  };
  if (pool != nullptr && scratch.busy.size() > 1) {
    pool->ParallelFor(scratch.busy.size(), commit_one);
  } else {
    for (size_t i = 0; i < scratch.busy.size(); ++i) commit_one(i);
  }

  result.applied = applied.load(std::memory_order_relaxed);
  result.buffered = buffered.load(std::memory_order_relaxed);
  result.rebuilds = rebuilds.load(std::memory_order_relaxed);
  result.pending_after = PendingUpdateCount();
  return result;
}

void BlockSet::CommitShardBatch(size_t s,
                                std::span<const GeoBlock::UpdateTuple> batch,
                                std::span<const uint32_t> subset,
                                std::atomic<size_t>* applied,
                                std::atomic<size_t>* buffered,
                                std::atomic<size_t>* rebuilds) {
  ShardWriter& w = *writers_[s];
  GeoBlock* block = blocks_[s].get();
  GeoBlockQC* qc = cache_enabled() ? cached_[s].get() : nullptr;
  std::lock_guard<std::mutex> lock(w.mu);
  // Lazy set: the commit must patch a materialized state — applying a
  // batch to a tombstone would reject every tuple into pending, and the
  // eventual merge would then build a state holding ONLY those tuples
  // (data loss). Fault-in here is bookkeeping-only (no EnsureBudget while
  // holding a shard lock — another shard's evict callback could be
  // waiting on ours); the budget transiently overshoots and the next
  // query-path fault trims it.
  if (source_ != nullptr) EnsureResident(s);
  // The commit proper: with a cache, block-state publish and trie patch
  // run as one writer critical section (GeoBlockQC::CommitBlockBatch), so
  // an interval-triggered trie rebuild can never interleave half a commit.
  // The shard reads its tuples straight out of the caller's batch through
  // the subset indices; rejected indices come back as batch indices.
  const GeoBlock::UpdateResult r =
      qc != nullptr ? qc->CommitBlockBatch(block, batch, subset)
                    : block->ApplyBatchUpdate(batch, subset);
  applied->fetch_add(r.applied, std::memory_order_relaxed);
  buffered->fetch_add(r.rejected.size(), std::memory_order_relaxed);
  for (const size_t idx : r.rejected) {
    // The one place a tuple is copied (allocating its values vector): the
    // new-region slow path, off the steady-state commit.
    w.pending.push_back(batch[idx]);
  }
  w.pending_count.store(w.pending.size(), std::memory_order_relaxed);
  if (source_ != nullptr && (r.applied > 0 || !r.rejected.empty())) {
    // Sticky: this shard's in-memory state now runs ahead of the mapped
    // payload (applied tuples immediately; buffered ones at merge time,
    // possibly on a background task with no path back here), so it must
    // never be evicted — a re-fault would resurrect the stale payload.
    residency_[s]->dirty.store(true, std::memory_order_release);
  }

  const size_t threshold = update_options_.pending_rebuild_threshold;
  if (threshold == 0 || w.pending.size() < threshold) return;
  if (update_options_.rebuild_pool != nullptr) {
    // Elect one background merger per shard; later crossings while it is
    // queued or running are absorbed (it drains whatever is buffered when
    // it gets the lock). The task holds the shard gate and the stable
    // per-shard pointers, never the (movable) set.
    if (w.merge_inflight.exchange(true, std::memory_order_acq_rel)) return;
    rebuilds->fetch_add(1, std::memory_order_relaxed);
    std::shared_ptr<ShardWriter> writer = writers_[s];
    update_options_.rebuild_pool->Submit([writer, block, qc] {
      std::lock_guard<std::mutex> task_lock(writer->mu);
      if (writer->alive) MergePendingLocked(writer.get(), block, qc);
      // Clear the election *inside* the lock: an updater holds this mutex
      // when it checks the flag, so inflight==true always means the merge
      // has not locked yet and will still drain that updater's tuples —
      // a crossing can never be absorbed by a merge that already ran.
      writer->merge_inflight.store(false, std::memory_order_release);
    });
  } else {
    rebuilds->fetch_add(1, std::memory_order_relaxed);
    MergePendingLocked(&w, block, qc);
  }
}

bool BlockSet::MergePendingLocked(ShardWriter* writer, GeoBlock* block,
                                  GeoBlockQC* qc) {
  if (writer->pending.empty()) return false;
  // The batched rebuild for new regions: one linear merge of the sorted
  // layouts (GeoBlock::MergeNewRegionTuples), with the cached ancestor
  // aggregates patched in the same writer critical section when a cache
  // exists.
  if (qc != nullptr) {
    qc->CommitNewRegionMerge(block, writer->pending);
  } else {
    block->MergeNewRegionTuples(writer->pending);
  }
  writer->pending.clear();
  writer->pending.shrink_to_fit();
  writer->pending_count.store(0, std::memory_order_relaxed);
  return true;
}

size_t BlockSet::FlushPendingUpdates() {
  size_t merged = 0;
  for (size_t s = 0; s < writers_.size(); ++s) {
    ShardWriter& w = *writers_[s];
    std::lock_guard<std::mutex> lock(w.mu);
    // A lazily opened set can hold file-restored pending tuples for a
    // shard that never materialized: merge into the real state, never
    // into a tombstone (which would drop every previously aggregated
    // cell). Merging also marks the shard dirty — its state now runs
    // ahead of the mapped payload.
    if (source_ != nullptr && !w.pending.empty()) EnsureResident(s);
    if (MergePendingLocked(&w, blocks_[s].get(),
                           cache_enabled() ? cached_[s].get() : nullptr)) {
      if (source_ != nullptr) {
        residency_[s]->dirty.store(true, std::memory_order_release);
      }
      ++merged;
    }
  }
  return merged;
}

size_t BlockSet::PendingUpdateCount() const {
  // Lock-free sum of the per-shard mirrors: never blocks on a shard whose
  // merge-rebuild is holding its writer lock. Point-in-time by nature.
  size_t pending = 0;
  for (const std::shared_ptr<ShardWriter>& w : writers_) {
    pending += w->pending_count.load(std::memory_order_relaxed);
  }
  return pending;
}

// ---------------------------------------------------------------------------
// Durability: recovery and checkpointing
// ---------------------------------------------------------------------------

BlockSet BlockSet::OpenLogged(const std::string& manifest_path,
                              io::UpdateLog* log) {
  if (log == nullptr) {
    throw std::invalid_argument("BlockSet::OpenLogged: null log");
  }
  std::ifstream in(manifest_path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("BlockSet::OpenLogged: cannot open manifest " +
                             manifest_path);
  }
  BlockSet set = ReadFrom(in);
  // Replay the tail the checkpoint has not absorbed: records at or below
  // the manifest's change number are already inside the loaded state and
  // are skipped (idempotent replay); the rest re-commit in log order, so
  // the recovered state equals a serial re-execution of every durable
  // batch.
  log->Replay(set.change_number(),
              [&set](uint64_t cn,
                     std::vector<GeoBlock::UpdateTuple>&& tuples) {
                set.CommitRouted(tuples, nullptr);
                set.AdoptChangeNumber(cn);
              });
  // A log that sits behind the manifest — a brand-new file, or one whose
  // header was torn by a crash and re-initialized at base 0 — would hand
  // out change numbers that a future replay against this manifest must
  // skip, silently dropping those batches. Rebase it to the manifest's
  // change number: every record it held was at or below that number (the
  // replay above skipped them all), so discarding them loses nothing.
  if (log->last_change_number() < set.change_number()) {
    log->Truncate(set.change_number());
  }
  set.log_ = log;
  return set;
}

uint64_t BlockSet::Checkpoint(const std::string& manifest_path) {
  std::ostringstream out(std::ios::binary);
  WriteTo(out);
  // Manifest first, atomically and durably; only then truncate the log.
  // A crash between the two leaves old records behind, and replay skips
  // all of them (every cn ≤ the new manifest's change number).
  io::AtomicWriteFile(manifest_path, out.str());
  const uint64_t cn = change_number();
  if (log_ != nullptr) log_->Truncate(cn);
  return cn;
}

// ---------------------------------------------------------------------------
// Attachment and the cached path
// ---------------------------------------------------------------------------

void BlockSet::AttachDataset(
    std::shared_ptr<const storage::SortedDataset> data) {
  if (data == nullptr) {
    throw std::invalid_argument("BlockSet::AttachDataset: null dataset");
  }
  if (blocks_.empty() || boundaries_.size() != blocks_.size() + 1) {
    throw std::logic_error(
        "BlockSet::AttachDataset: set has no manifest metadata");
  }
  if (dataset_attached_) {
    throw std::logic_error(
        "BlockSet::AttachDataset: dataset already attached; DetachDataset "
        "first");
  }
  // Attachment validates per-shard schema widths, which only materialized
  // shards know: fault everything in first (the views attached below are
  // independent of residency — an eviction after attach keeps them).
  if (source_ != nullptr) {
    for (size_t s = 0; s < blocks_.size(); ++s) EnsureResident(s);
    if (governor_ != nullptr) governor_->EnsureBudget();
  }
  if (data->num_rows() != total_rows_) {
    throw std::runtime_error(
        "BlockSet::AttachDataset: dataset row count does not match the "
        "manifest");
  }
  const geo::Rect domain = data->projection().domain();
  const geo::Rect expected = projection_.domain();
  if (domain.min.x != expected.min.x || domain.min.y != expected.min.y ||
      domain.max.x != expected.max.x || domain.max.y != expected.max.y) {
    throw std::runtime_error(
        "BlockSet::AttachDataset: dataset projection domain does not match "
        "the blocks");
  }
  constexpr uint64_t kEndKey = ~uint64_t{0};
  for (size_t i = 0; i < blocks_.size(); ++i) {
    if (blocks_[i]->num_columns() != data->num_columns()) {
      throw std::runtime_error(
          "BlockSet::AttachDataset: dataset column count does not match the "
          "blocks");
    }
    const ShardWindow& w = windows_[i];
    if (w.num_rows == 0) continue;
    // Every key in the window must fall inside the shard's manifest
    // boundary range [boundaries_[i], boundaries_[i+1]); the keys are
    // sorted, so checking the two endpoints suffices.
    const uint64_t first = data->keys()[w.offset];
    const uint64_t last = data->keys()[w.offset + w.num_rows - 1];
    if (first < boundaries_[i] ||
        (boundaries_[i + 1] != kEndKey && last >= boundaries_[i + 1])) {
      throw std::runtime_error(
          "BlockSet::AttachDataset: dataset keys fall outside the shard "
          "boundaries in the manifest");
    }
  }
  for (size_t i = 0; i < blocks_.size(); ++i) {
    const ShardWindow& w = windows_[i];
    blocks_[i]->AttachData(
        storage::DatasetView::Window(data, w.offset, w.offset + w.num_rows));
  }
  dataset_attached_ = true;
}

void BlockSet::DetachDataset() {
  for (const std::unique_ptr<GeoBlock>& b : blocks_) b->DetachData();
  dataset_attached_ = false;
}

void BlockSet::EnableCache(const GeoBlockQC::Options& options) {
  // Trie governor entries reference the outgoing QCs: drop them before
  // the QCs die (Unregister waits out an in-flight evict callback).
  if (governor_ != nullptr) {
    for (const std::shared_ptr<ShardResidency>& res : residency_) {
      if (res != nullptr && res->trie_entry != nullptr) {
        governor_->Unregister(res->trie_entry);
        res->trie_entry = nullptr;
      }
    }
  }
  // Re-enabling after updates ran: background merge tasks still queued on
  // a rebuild pool captured the *outgoing* QCs. Neutralize each shard's
  // gate (the task locks, sees dead, skips) and migrate its pending
  // buffer to a fresh writer record before destroying the QCs.
  for (std::shared_ptr<ShardWriter>& w : writers_) {
    if (w == nullptr) continue;
    auto fresh = std::make_shared<ShardWriter>();
    {
      std::lock_guard<std::mutex> lock(w->mu);
      w->alive = false;
      fresh->pending = std::move(w->pending);
      fresh->pending_count.store(fresh->pending.size(),
                                 std::memory_order_relaxed);
    }
    w = std::move(fresh);
  }
  cached_.clear();
  cached_.reserve(blocks_.size());
  for (const std::unique_ptr<GeoBlock>& b : blocks_) {
    cached_.push_back(std::make_unique<GeoBlockQC>(b.get(), options));
  }
  // Lazy sets re-wire the governor: the payload evict callbacks captured
  // the OLD writer records (now flipped dead above) and would refuse
  // every eviction, so they are re-registered against the fresh writers;
  // the new tries get their own entries.
  if (source_ != nullptr && governor_ != nullptr) {
    for (size_t s = 0; s < blocks_.size(); ++s) {
      RegisterShardEntry(s);
      RegisterTrieEntry(s);
    }
  }
}

const GeoBlockQC& BlockSet::cached_shard(size_t i) const {
  if (!cache_enabled()) {
    throw std::logic_error("BlockSet::cached_shard: cache not enabled");
  }
  return *cached_[i];
}

QueryResult BlockSet::SelectCached(const geo::Polygon& polygon,
                                   const AggregateRequest& request) const {
  // Per-thread covering scratch: the vector's capacity is reused across
  // queries, so the cached hot path performs no per-query allocation for
  // the covering.
  thread_local std::vector<cell::CellId> covering;
  CoverInto(polygon, &covering);
  return SelectCoveringCached(covering, request);
}

QueryResult BlockSet::SelectCoveringCached(
    std::span<const cell::CellId> covering,
    const AggregateRequest& request) const {
  QueryResult result;
  SelectCoveringCachedInto(covering, request, &result);
  return result;
}

void BlockSet::SelectCoveringCachedInto(std::span<const cell::CellId> covering,
                                        const AggregateRequest& request,
                                        QueryResult* out) const {
  thread_local std::vector<size_t> shards;
  OverlappingShards(covering, &shards);
  Accumulator acc(&request);
  // Lock-free fold: each shard's CombineCovering loads that shard's trie
  // snapshot and block-state version once and probes them without any
  // mutex (GeoBlockQC concurrency model). Shards are visited in ascending
  // order, so the fold stays bit-identical to a serialized execution over
  // the same snapshots. With the cache disabled the same fold runs against
  // the raw blocks (identical to SelectCovering).
  if (cache_enabled()) {
    for (const size_t s : shards) {
      if (source_ == nullptr) {
        cached_[s]->CombineCovering(covering, &acc);
        continue;
      }
      // Lazy set: the cached fold refuses to answer over a tombstone
      // (GeoBlockQC::CombineCovering returns false having folded
      // nothing). Fault the shard in and retry; if eviction keeps
      // winning the race, fold straight from the pinned state we just
      // materialized — it is guaranteed non-tombstone, so correctness
      // never depends on winning a race.
      if (cached_[s]->CombineCovering(covering, &acc)) continue;
      bool folded = false;
      for (int attempt = 0; attempt < 2 && !folded; ++attempt) {
        const std::shared_ptr<const BlockState> pinned =
            ResidentState(s, /*rebalance=*/true);
        folded = cached_[s]->CombineCovering(covering, &acc);
        if (!folded && attempt == 1) {
          pinned->CombineCovering(covering, &acc);
          folded = true;
        }
      }
    }
  } else {
    for (const size_t s : shards) {
      if (source_ != nullptr) {
        ResidentState(s, /*rebalance=*/true)->CombineCovering(covering, &acc);
      } else {
        blocks_[s]->CombineCovering(covering, &acc);
      }
    }
  }
  acc.FinishInto(out);
}

void BlockSet::RebuildCaches(util::ThreadPool* pool) {
  const auto rebuild_one = [this](size_t i) { cached_[i]->RebuildCache(); };
  if (pool != nullptr) {
    pool->ParallelFor(cached_.size(), rebuild_one);
  } else {
    for (size_t i = 0; i < cached_.size(); ++i) rebuild_one(i);
  }
}

CacheCounters BlockSet::MergedCacheCounters() const {
  // Lock-free merge of per-shard snapshots: monotone between resets and
  // exact once readers quiesce (see the header's consistency note).
  CacheCounters total;
  for (const std::unique_ptr<GeoBlockQC>& shard : cached_) {
    const CacheCounters c = shard->counters();
    total.probes += c.probes;
    total.full_hits += c.full_hits;
    total.partial_hits += c.partial_hits;
    total.misses += c.misses;
    total.stat_drops += c.stat_drops;
  }
  return total;
}

void BlockSet::ResetCacheCounters() {
  for (const std::unique_ptr<GeoBlockQC>& shard : cached_) {
    shard->ResetCounters();
  }
}

}  // namespace geoblocks::core
