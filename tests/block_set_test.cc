#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/block_set.h"
#include "core/geoblock.h"
#include "storage/sharded_dataset.h"
#include "util/thread_pool.h"
#include "workload/datagen.h"
#include "workload/polygen.h"

namespace geoblocks {
namespace {

using core::AggFn;
using core::AggregateRequest;
using core::BlockSet;
using core::BlockSetOptions;
using core::GeoBlock;
using core::QueryResult;

/// Sharded execution must be indistinguishable from a single block: the
/// shard cut is aligned to cell boundaries, shards are visited in key
/// order, and each shard combines its aggregates in ascending order, so
/// even the floating-point sums are reproduced bit for bit. This is the
/// same invariant integration_test.cc checks for the sorted baselines.
class BlockSetTest : public ::testing::Test {
 protected:
  static constexpr int kLevel = 15;

  static void SetUpTestSuite() {
    raw_ = new storage::PointTable(workload::GenTaxi(40000, 11));
    storage::ExtractOptions options;
    options.clean_bounds = workload::NycBounds();
    data_ = new storage::SortedDataset(
        storage::SortedDataset::Extract(*raw_, options));
    block_ = new GeoBlock(
        GeoBlock::Build(*data_, core::BlockOptions{kLevel, {}}));
    polygons_ = new std::vector<geo::Polygon>(
        workload::Neighborhoods(*raw_, 30, 12));
  }
  static void TearDownTestSuite() {
    delete polygons_;
    delete block_;
    delete data_;
    delete raw_;
    polygons_ = nullptr;
    block_ = nullptr;
    data_ = nullptr;
    raw_ = nullptr;
  }

  static AggregateRequest Request() {
    AggregateRequest req;
    req.Add(AggFn::kCount);
    req.Add(AggFn::kSum, 0);
    req.Add(AggFn::kMin, 1);
    req.Add(AggFn::kMax, 2);
    req.Add(AggFn::kAvg, 3);
    req.Add(AggFn::kSum, 5);
    return req;
  }

  static void ExpectBitIdentical(const QueryResult& got,
                                 const QueryResult& want, const char* what) {
    ASSERT_EQ(got.count, want.count) << what;
    ASSERT_EQ(got.values.size(), want.values.size()) << what;
    for (size_t i = 0; i < got.values.size(); ++i) {
      ASSERT_EQ(got.values[i], want.values[i]) << what << " value " << i;
    }
  }

  static storage::ShardedDataset Shard(size_t k, int align_level = kLevel) {
    storage::ShardOptions options;
    options.num_shards = k;
    options.align_level = align_level;
    return storage::ShardedDataset::Partition(*data_, options);
  }

  static storage::PointTable* raw_;
  static storage::SortedDataset* data_;
  static GeoBlock* block_;
  static std::vector<geo::Polygon>* polygons_;
};

storage::PointTable* BlockSetTest::raw_ = nullptr;
storage::SortedDataset* BlockSetTest::data_ = nullptr;
GeoBlock* BlockSetTest::block_ = nullptr;
std::vector<geo::Polygon>* BlockSetTest::polygons_ = nullptr;

TEST_F(BlockSetTest, PartitionPreservesRowsAndOrder) {
  const storage::ShardedDataset sharded = Shard(4);
  ASSERT_EQ(sharded.num_shards(), 4u);
  ASSERT_EQ(sharded.total_rows(), data_->num_rows());
  // Concatenating the shard keys reproduces the sorted key sequence.
  size_t row = 0;
  for (size_t s = 0; s < sharded.num_shards(); ++s) {
    for (const uint64_t key : sharded.shard(s).keys()) {
      ASSERT_EQ(key, data_->keys()[row]) << "row " << row;
      ++row;
    }
  }
  ASSERT_EQ(row, data_->num_rows());
}

TEST_F(BlockSetTest, PartitionIsZeroCopy) {
  const storage::ShardedDataset sharded = Shard(6);
  ASSERT_EQ(sharded.parent().get(), data_);
  size_t offset = 0;
  for (size_t s = 0; s < sharded.num_shards(); ++s) {
    const storage::DatasetView& view = sharded.shard(s);
    // The shard's spans alias the parent's arrays — no row was copied.
    EXPECT_EQ(view.keys().data(), data_->keys().data() + view.offset());
    EXPECT_EQ(view.xs().data(), data_->xs().data() + view.offset());
    EXPECT_EQ(view.offset(), offset);
    offset += view.num_rows();
  }
  EXPECT_EQ(offset, data_->num_rows());
}

TEST_F(BlockSetTest, PartitionMemoryIsMetadataPlusOneParent) {
  const storage::ShardedDataset sharded = Shard(8);
  // The partition adds O(K) metadata on top of the single shared payload;
  // the old deep-copy design effectively doubled MemoryBytes here.
  EXPECT_EQ(sharded.MemoryBytes(),
            data_->MemoryBytes() + sharded.PartitionOverheadBytes());
  EXPECT_LT(sharded.PartitionOverheadBytes(), data_->MemoryBytes() / 100);
  EXPECT_EQ(sharded.total_rows(), data_->num_rows());
}

TEST_F(BlockSetTest, PartitionValidatesOptions) {
  storage::ShardOptions zero_shards;
  zero_shards.num_shards = 0;
  EXPECT_THROW(storage::ShardedDataset::Partition(*data_, zero_shards),
               std::invalid_argument);
  storage::ShardOptions negative_level;
  negative_level.align_level = -1;
  EXPECT_THROW(storage::ShardedDataset::Partition(*data_, negative_level),
               std::invalid_argument);
  storage::ShardOptions too_fine;
  too_fine.align_level = cell::CellId::kMaxLevel + 1;
  EXPECT_THROW(storage::ShardedDataset::Partition(*data_, too_fine),
               std::invalid_argument);
  EXPECT_THROW(
      storage::ShardedDataset::Partition(
          std::shared_ptr<const storage::SortedDataset>(), {}),
      std::invalid_argument);
}

TEST_F(BlockSetTest, MoveOverloadValidatesBeforeConsumingData) {
  storage::SortedDataset copy = data_->Slice(0, 1000);
  storage::ShardOptions bad;
  bad.num_shards = 0;
  EXPECT_THROW(storage::ShardedDataset::Partition(std::move(copy), bad),
               std::invalid_argument);
  // Validation happens before the move, so a failed call leaves the rows
  // with the caller for a retry.
  ASSERT_EQ(copy.num_rows(), 1000u);
  const storage::ShardedDataset sharded =
      storage::ShardedDataset::Partition(std::move(copy), {});
  EXPECT_EQ(sharded.total_rows(), 1000u);
}

TEST_F(BlockSetTest, PartitionAlignsToCellBoundaries) {
  const storage::ShardedDataset sharded = Shard(5);
  // No align-level cell may span two shards: the last key of a shard and
  // the first key of the next shard must fall into different cells.
  uint64_t prev_last = 0;
  bool have_prev = false;
  for (size_t s = 0; s < sharded.num_shards(); ++s) {
    const storage::DatasetView& shard = sharded.shard(s);
    if (shard.num_rows() == 0) continue;
    const cell::CellId first =
        cell::CellId(shard.keys().front()).Parent(kLevel);
    if (have_prev) {
      EXPECT_NE(first, cell::CellId(prev_last).Parent(kLevel))
          << "shard " << s << " splits a level-" << kLevel << " cell";
    }
    prev_last = shard.keys().back();
    have_prev = true;
  }
}

TEST_F(BlockSetTest, ShardedResultsBitIdenticalToSingleBlock) {
  util::ThreadPool pool(4);
  const AggregateRequest req = Request();
  for (const size_t k : {size_t{1}, size_t{4}, size_t{7}}) {
    const storage::ShardedDataset sharded = Shard(k);
    const BlockSet set =
        BlockSet::Build(sharded, BlockSetOptions{{kLevel, {}}}, &pool);
    ASSERT_EQ(set.num_shards(), k);
    ASSERT_EQ(set.num_cells(), block_->num_cells()) << "K=" << k;
    for (const geo::Polygon& poly : *polygons_) {
      const auto covering = block_->Cover(poly);
      ExpectBitIdentical(set.SelectCovering(covering, req),
                         block_->SelectCovering(covering, req), "select");
      EXPECT_EQ(set.CountCovering(covering),
                block_->CountCovering(covering));
    }
  }
}

TEST_F(BlockSetTest, CoarseAlignmentCreatesEmptyShardsButStaysCorrect) {
  // Aligning at a very coarse level collapses most boundary candidates
  // onto the same cell start, leaving later shards empty. Results must be
  // unaffected. (The block level must stay >= align_level for the
  // bit-identical guarantee, so build at kLevel with align 6.)
  const storage::ShardedDataset sharded = Shard(16, 6);
  ASSERT_EQ(sharded.num_shards(), 16u);
  size_t empty = 0;
  for (size_t s = 0; s < sharded.num_shards(); ++s) {
    if (sharded.shard(s).num_rows() == 0) ++empty;
  }
  EXPECT_GT(empty, 0u) << "expected coarse alignment to produce empty shards";
  ASSERT_EQ(sharded.total_rows(), data_->num_rows());

  const BlockSet set = BlockSet::Build(sharded, BlockSetOptions{{kLevel, {}}});
  const AggregateRequest req = Request();
  for (const geo::Polygon& poly : *polygons_) {
    const auto covering = block_->Cover(poly);
    ExpectBitIdentical(set.SelectCovering(covering, req),
                       block_->SelectCovering(covering, req), "empty-shards");
  }
}

TEST_F(BlockSetTest, EmptyDatasetYieldsEmptyShards) {
  const storage::SortedDataset empty = data_->Slice(0, 0);
  storage::ShardOptions options;
  options.num_shards = 3;
  const auto sharded = storage::ShardedDataset::Partition(empty, options);
  ASSERT_EQ(sharded.num_shards(), 3u);
  EXPECT_EQ(sharded.total_rows(), 0u);

  const BlockSet set = BlockSet::Build(sharded, BlockSetOptions{{kLevel, {}}});
  const AggregateRequest req = Request();
  const QueryResult r = set.Select((*polygons_)[0], req);
  EXPECT_EQ(r.count, 0u);
  EXPECT_EQ(set.Count((*polygons_)[0]), 0u);
}

TEST_F(BlockSetTest, MergedHeaderMatchesSingleBlockHeader) {
  const storage::ShardedDataset sharded = Shard(7);
  const BlockSet set = BlockSet::Build(sharded, BlockSetOptions{{kLevel, {}}});
  const core::BlockHeader merged = set.MergedHeader();
  EXPECT_EQ(merged.level, block_->header().level);
  EXPECT_EQ(merged.min_cell, block_->header().min_cell);
  EXPECT_EQ(merged.max_cell, block_->header().max_cell);
  EXPECT_EQ(merged.global.count, block_->header().global.count);
  ASSERT_EQ(merged.global.columns.size(),
            block_->header().global.columns.size());
  for (size_t c = 0; c < merged.global.columns.size(); ++c) {
    EXPECT_EQ(merged.global.columns[c].min,
              block_->header().global.columns[c].min);
    EXPECT_EQ(merged.global.columns[c].max,
              block_->header().global.columns[c].max);
  }
}

TEST_F(BlockSetTest, RoutingPrunesShards) {
  const storage::ShardedDataset sharded = Shard(7);
  const BlockSet set = BlockSet::Build(sharded, BlockSetOptions{{kLevel, {}}});
  // Hilbert locality: small neighborhood polygons should hit only a
  // fraction of the 7 shards on average.
  size_t total_visits = 0;
  for (const geo::Polygon& poly : *polygons_) {
    const auto covering = set.Cover(poly);
    const auto shards = set.OverlappingShards(covering);
    ASSERT_LE(shards.size(), set.num_shards());
    total_visits += shards.size();
  }
  EXPECT_LT(total_visits, polygons_->size() * set.num_shards() / 2)
      << "shard routing is not pruning";
}

TEST_F(BlockSetTest, FilteredBuildMatchesFilteredSingleBlock) {
  storage::Filter filter;
  filter.Add({1, storage::CompareOp::kGe, 4.0});
  const GeoBlock filtered_block =
      GeoBlock::Build(*data_, core::BlockOptions{kLevel, filter});
  const storage::ShardedDataset sharded = Shard(4);
  const BlockSet set =
      BlockSet::Build(sharded, BlockSetOptions{{kLevel, filter}});
  const AggregateRequest req = Request();
  for (const geo::Polygon& poly : *polygons_) {
    const auto covering = filtered_block.Cover(poly);
    ExpectBitIdentical(set.SelectCovering(covering, req),
                       filtered_block.SelectCovering(covering, req),
                       "filtered");
  }
}

}  // namespace
}  // namespace geoblocks
