// Exploratory-analysis scenario from the paper's introduction: an analyst
// compares the tip rate of expensive rides against all rides in several
// neighborhoods, switching filters without re-sorting the data
// (incremental builds, Section 3.3 / Figure 5).
//
// Run:  ./build/examples/taxi_analysis
#include <cstdio>

#include "bench_util/bench_util.h"
#include "core/geoblock.h"
#include "workload/datagen.h"
#include "workload/polygen.h"

using namespace geoblocks;

int main() {
  const storage::PointTable raw = workload::GenTaxi(500'000);
  storage::ExtractOptions options;
  options.clean_bounds = workload::NycBounds();

  // Extract once: the sorting cost is shared by every block built below.
  bench_util::Timer timer;
  const storage::SortedDataset data =
      storage::SortedDataset::Extract(raw, options);
  std::printf("extract (sort once): %.0f ms\n", timer.ElapsedMs());

  // Incrementally build one block for all rides and one for expensive
  // rides (fare_amount > 20) — the paper's motivating comparison query.
  const int fare = raw.schema().ColumnIndex("fare_amount");
  const int tip_rate = raw.schema().ColumnIndex("tip_rate");

  timer.Restart();
  const core::GeoBlock all_rides =
      core::GeoBlock::Build(data, core::BlockOptions{17, {}});
  storage::Filter expensive_filter;
  expensive_filter.Add({fare, storage::CompareOp::kGt, 20.0});
  const core::GeoBlock expensive_rides =
      core::GeoBlock::Build(data, core::BlockOptions{17, expensive_filter});
  std::printf("built 2 GeoBlocks incrementally: %.0f ms "
              "(%zu / %zu cell aggregates)\n\n",
              timer.ElapsedMs(), all_rides.num_cells(),
              expensive_rides.num_cells());

  // Query both blocks for a handful of neighborhoods.
  const auto neighborhoods = workload::Neighborhoods(raw, 6, /*seed=*/99);
  core::AggregateRequest request;
  request.Add(core::AggFn::kCount);
  request.Add(core::AggFn::kAvg, tip_rate);

  std::printf("%-14s %12s %14s %14s\n", "neighborhood", "rides",
              "avg tip (all)", "avg tip (>$20)");
  for (size_t i = 0; i < neighborhoods.size(); ++i) {
    const core::QueryResult all = all_rides.Select(neighborhoods[i], request);
    const core::QueryResult exp =
        expensive_rides.Select(neighborhoods[i], request);
    std::printf("#%-13zu %12llu %13.1f%% %13.1f%%\n", i,
                static_cast<unsigned long long>(all.count),
                100.0 * all.values[1], 100.0 * exp.values[1]);
  }

  // Changing the grid granularity later does not require the base data:
  // derive a coarser overview block straight from the fine one.
  timer.Restart();
  const core::GeoBlock overview = all_rides.CoarsenTo(13);
  std::printf("\ncoarsened level 17 -> 13 without re-scanning: %.1f ms "
              "(%zu cells)\n",
              timer.ElapsedMs(), overview.num_cells());
  return 0;
}
