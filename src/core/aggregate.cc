#include "core/aggregate.h"

namespace geoblocks::core {

std::string ToString(AggFn fn) {
  switch (fn) {
    case AggFn::kCount: return "count";
    case AggFn::kSum: return "sum";
    case AggFn::kMin: return "min";
    case AggFn::kMax: return "max";
    case AggFn::kAvg: return "avg";
  }
  return "?";
}

AggregateRequest AggregateRequest::FirstN(size_t n, size_t num_columns) {
  AggregateRequest req;
  if (n == 0) return req;
  req.Add(AggFn::kCount);
  static constexpr AggFn kCycle[] = {AggFn::kSum, AggFn::kMin, AggFn::kMax,
                                     AggFn::kAvg};
  size_t fn_idx = 0;
  for (size_t i = 1; i < n; ++i) {
    req.Add(kCycle[fn_idx % 4],
            num_columns == 0 ? 0 : static_cast<int>((i - 1) % num_columns));
    ++fn_idx;
  }
  return req;
}

}  // namespace geoblocks::core
