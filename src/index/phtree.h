#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/aggregate.h"
#include "geo/polygon.h"
#include "geo/rect.h"
#include "storage/sorted_dataset.h"

namespace geoblocks::index {

/// Interleaves two 30-bit grid coordinates into a 60-bit z-order key
/// (bit pair q holds bit q of i in the high position and bit q of j in the
/// low position).
uint64_t InterleaveBits(uint32_t i, uint32_t j);

/// Inverse of InterleaveBits.
std::pair<uint32_t, uint32_t> DeinterleaveBits(uint64_t key);

/// A 2-D PH-tree (Zäschke et al., SIGMOD 2014) standing in for the
/// open-source implementation the paper benchmarks (Section 4.1): a
/// patricia trie over bit-interleaved point coordinates whose nodes are
/// 2^d = 4-ary hypercubes with prefix sharing (path compression). It
/// supports point insertion and rectangular window queries; polygonal
/// queries are approximated by the polygon's interior rectangle, exactly
/// as in the paper.
class PhTree {
 public:
  static constexpr int kBitsPerDim = 30;
  static constexpr uint32_t kGridSide = 1u << kBitsPerDim;

  PhTree() = default;
  ~PhTree();
  PhTree(PhTree&&) noexcept;
  PhTree& operator=(PhTree&&) noexcept;
  PhTree(const PhTree&) = delete;
  PhTree& operator=(const PhTree&) = delete;

  /// Inserts a point at grid coordinates (i, j) carrying `row` as payload.
  void Insert(uint32_t i, uint32_t j, uint32_t row);

  size_t size() const { return size_; }

  /// Invokes `visit(row)` for every point inside the closed window
  /// [i_min, i_max] x [j_min, j_max].
  template <typename Visitor>
  void WindowQuery(uint32_t i_min, uint32_t i_max, uint32_t j_min,
                   uint32_t j_max, const Visitor& visit) const {
    VisitChild(root_, i_min, i_max, j_min, j_max, visit);
  }

  /// Number of points inside the window.
  uint64_t WindowCount(uint32_t i_min, uint32_t i_max, uint32_t j_min,
                       uint32_t j_max) const;

  /// Bytes used by trie nodes and buckets (size-overhead reporting).
  size_t MemoryBytes() const;

 private:
  struct Bucket {
    uint64_t key;
    std::vector<uint32_t> rows;
  };
  struct Node;
  /// Tagged child pointer: null, inner node, or leaf bucket.
  struct Child {
    void* ptr = nullptr;
    bool is_bucket = false;

    bool IsNull() const { return ptr == nullptr; }
    Node* node() const { return static_cast<Node*>(ptr); }
    Bucket* bucket() const { return static_cast<Bucket*>(ptr); }
  };
  struct Node {
    /// Interleaved key bits shared by the whole subtree; bits at pairs
    /// <= `pair` are zero.
    uint64_t prefix;
    /// Bit-pair index this node discriminates on (29 = most significant).
    int pair;
    std::array<Child, 4> children;
  };

  static int HighestDifferingPair(uint64_t a, uint64_t b);
  static uint64_t PrefixAbove(uint64_t key, int pair);
  Child InsertIntoChild(Child child, uint64_t key, uint32_t row);

  template <typename Visitor>
  void VisitChild(const Child& child, uint32_t i_min, uint32_t i_max,
                  uint32_t j_min, uint32_t j_max,
                  const Visitor& visit) const;
  template <typename Visitor>
  void VisitAll(const Child& child, const Visitor& visit) const;

  void DestroyChild(Child child);
  size_t ChildBytes(const Child& child) const;

  Child root_{};
  size_t size_ = 0;
};

/// The PHTree baseline wrapper: indexes dataset rows by their grid
/// coordinates and answers aggregation queries over the interior rectangle
/// of a query polygon.
class PhTreeIndex {
 public:
  explicit PhTreeIndex(const storage::SortedDataset* data);

  const PhTree& tree() const { return tree_; }

  /// Grid-aligned window for a lat/lng rectangle.
  struct Window {
    uint32_t i_min, i_max, j_min, j_max;
    bool empty = false;
  };
  Window ToWindow(const geo::Rect& world_rect) const;

  /// Interior rectangle of the polygon, used as the query region
  /// (Section 4.1: "we use S2 to get the interior rectangle of the query
  /// polygon and use this as a query region").
  geo::Rect InteriorRect(const geo::Polygon& polygon) const;

  core::QueryResult Select(const geo::Polygon& polygon,
                           const core::AggregateRequest& request) const;
  core::QueryResult SelectWindow(const Window& window,
                                 const core::AggregateRequest& request) const;
  uint64_t Count(const geo::Polygon& polygon) const;

  size_t MemoryBytes() const { return tree_.MemoryBytes(); }

 private:
  const storage::SortedDataset* data_;
  PhTree tree_;
};

// --- template implementations -------------------------------------------

template <typename Visitor>
void PhTree::VisitAll(const Child& child, const Visitor& visit) const {
  if (child.IsNull()) return;
  if (child.is_bucket) {
    for (uint32_t row : child.bucket()->rows) visit(row);
    return;
  }
  for (const Child& c : child.node()->children) VisitAll(c, visit);
}

template <typename Visitor>
void PhTree::VisitChild(const Child& child, uint32_t i_min, uint32_t i_max,
                        uint32_t j_min, uint32_t j_max,
                        const Visitor& visit) const {
  if (child.IsNull()) return;
  if (child.is_bucket) {
    const auto [i, j] = DeinterleaveBits(child.bucket()->key);
    if (i >= i_min && i <= i_max && j >= j_min && j <= j_max) {
      for (uint32_t row : child.bucket()->rows) visit(row);
    }
    return;
  }
  const Node* node = child.node();
  // The subtree occupies an axis-aligned square of side 2^(pair+1) whose
  // corner is encoded in the prefix.
  const auto [pi, pj] = DeinterleaveBits(node->prefix);
  const uint32_t side = node->pair >= 31 ? 0 : (2u << node->pair);
  const uint32_t i_lo = pi;
  const uint32_t j_lo = pj;
  const uint32_t i_hi = i_lo + side - 1;
  const uint32_t j_hi = j_lo + side - 1;
  if (i_hi < i_min || i_lo > i_max || j_hi < j_min || j_lo > j_max) return;
  if (i_lo >= i_min && i_hi <= i_max && j_lo >= j_min && j_hi <= j_max) {
    // Fully contained: still visits every point, as the PH-tree maintains
    // no aggregates (this is exactly why on-the-fly baselines scale with
    // the result size).
    for (const Child& c : node->children) VisitAll(c, visit);
    return;
  }
  for (const Child& c : node->children) {
    VisitChild(c, i_min, i_max, j_min, j_max, visit);
  }
}

}  // namespace geoblocks::index
