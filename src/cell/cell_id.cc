#include "cell/cell_id.h"

#include <algorithm>
#include <cmath>

#include "cell/hilbert.h"

namespace geoblocks::cell {

namespace {

uint32_t UnitToGrid(double v) {
  const double scaled = v * static_cast<double>(kHilbertSide);
  if (scaled <= 0.0) return 0;
  if (scaled >= static_cast<double>(kHilbertSide)) return kHilbertSide - 1;
  return static_cast<uint32_t>(scaled);
}

}  // namespace

CellId CellId::FromPoint(const geo::Point& unit_point) {
  return FromIJ(UnitToGrid(unit_point.x), UnitToGrid(unit_point.y));
}

CellId CellId::FromIJ(uint32_t i, uint32_t j) {
  return CellId((HilbertXYToD(i, j) << 1) | 1);
}

CellId CellId::FromIJLevel(uint32_t i, uint32_t j, int level) {
  return FromIJ(i, j).Parent(level);
}

void CellId::ToIJ(uint32_t* i, uint32_t* j, uint32_t* size) const {
  const uint64_t first_leaf_pos = RangeMin().pos();
  auto [fi, fj] = HilbertDToXY(first_leaf_pos);
  const uint32_t cell_size = uint32_t{1} << (kMaxLevel - level());
  *i = fi & ~(cell_size - 1);
  *j = fj & ~(cell_size - 1);
  *size = cell_size;
}

geo::Rect CellId::ToRect() const {
  uint32_t i = 0;
  uint32_t j = 0;
  uint32_t size = 0;
  ToIJ(&i, &j, &size);
  const double inv = 1.0 / static_cast<double>(kHilbertSide);
  return geo::Rect{{i * inv, j * inv},
                   {(i + static_cast<double>(size)) * inv,
                    (j + static_cast<double>(size)) * inv}};
}

geo::Point CellId::CenterPoint() const { return ToRect().Center(); }

CellId CellId::CommonAncestor(CellId a, CellId b) {
  uint64_t bits = a.id() ^ b.id();
  bits |= a.lsb();
  bits |= b.lsb();
  const int msb = 63 - std::countl_zero(bits);
  // The ancestor's lsb must sit at an even bit position >= msb.
  const int lsb_pos = std::min((msb + 1) & ~1, 2 * kMaxLevel);
  const int level = kMaxLevel - lsb_pos / 2;
  return a.Parent(level);
}

std::string CellId::ToString() const {
  if (!is_valid()) return "(invalid)";
  const int lvl = level();
  std::string path;
  for (int l = 1; l <= lvl; ++l) {
    path += static_cast<char>('0' + Parent(l).ChildPosition());
  }
  return std::to_string(lvl) + "/" + path;
}

}  // namespace geoblocks::cell
