#include "core/query_stats.h"

#include <algorithm>

namespace geoblocks::core {

std::vector<cell::CellId> QueryStats::RankedCells() const {
  struct Entry {
    cell::CellId cell;
    uint32_t score;
    int level;
  };
  std::vector<Entry> entries;
  entries.reserve(hits_.size());
  for (const auto& [id, _] : hits_) {
    const cell::CellId c(id);
    entries.push_back({c, Score(c), c.level()});
  }
  std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
    if (a.score != b.score) return a.score > b.score;
    if (a.level != b.level) return a.level < b.level;
    return a.cell < b.cell;
  });
  std::vector<cell::CellId> out;
  out.reserve(entries.size());
  for (const Entry& e : entries) out.push_back(e.cell);
  return out;
}

}  // namespace geoblocks::core
