#pragma once

#include <cstdint>
#include <vector>

#include "geo/polygon.h"

namespace geoblocks::workload {

/// A query workload: an ordered list of query polygons (Section 4.1: "As a
/// base workload, we build a query containing each polygon once. For the
/// skewed workload, we select 10% of neighborhoods uniformly at random and
/// query them multiple times.").
struct Workload {
  std::vector<const geo::Polygon*> queries;

  size_t size() const { return queries.size(); }
};

/// Each polygon exactly once.
Workload BaseWorkload(const std::vector<geo::Polygon>& polygons);

/// A uniformly random `fraction` of the polygons (at least one), in stable
/// order; one "skewed run" queries each selected polygon once.
Workload SkewedWorkload(const std::vector<geo::Polygon>& polygons,
                        double fraction = 0.1, uint64_t seed = 17);

/// Concatenation: `base_runs` passes of the base workload followed by
/// `skewed_runs` passes of the skewed workload, interleaved
/// base-first (used for the combined workloads of Figures 10 and 17).
Workload CombinedWorkload(const Workload& base, size_t base_runs,
                          const Workload& skewed, size_t skewed_runs);

}  // namespace geoblocks::workload
