// Reproduces Figure 11c: influence of the block level (13-21) on GeoBlock
// preparation time and relative size overhead.
#include "bench/common.h"

namespace geoblocks::bench {
namespace {

void Run() {
  bench_util::Banner("Figure 11c — level influence on GeoBlocks overhead",
                     "Preparation time (sort incl. cell collection + build) "
                     "and size overhead per block level.");
  const storage::PointTable raw = workload::GenTaxi(TaxiPoints());
  storage::ExtractOptions options;
  options.clean_bounds = workload::NycBounds();
  const auto payload_data = storage::SortedDataset::Extract(raw, options);
  const double payload = static_cast<double>(payload_data.PayloadBytes());

  bench_util::TablePrinter table(
      {"level", "~cell diag", "prep ms", "overhead %", "cells"});
  for (int level = 13; level <= 21; ++level) {
    storage::ExtractOptions opt = options;
    opt.collect_cells_level = level;
    storage::SortedDataset data;
    core::GeoBlock block;
    const double prep_ms = bench_util::TimeMs([&] {
      data = storage::SortedDataset::Extract(raw, opt);
      block = core::GeoBlock::Build(data, {level, {}});
    });
    const double overhead = 100.0 * block.MemoryBytes() / payload;
    table.AddRow({std::to_string(level),
                  bench_util::TablePrinter::Fmt(
                      cell::ApproxCellDiagonalMeters(level), 0) +
                      "m",
                  bench_util::TablePrinter::Fmt(prep_ms),
                  bench_util::TablePrinter::Fmt(overhead, 2) + "%",
                  std::to_string(block.num_cells())});
  }
  table.Print();
  PaperNote(
      "prep time rises only slowly with the level while the size overhead "
      "grows almost exponentially (cells quadruple per level until the "
      "data's sparsity caps the growth).");
}

}  // namespace
}  // namespace geoblocks::bench

int main() { geoblocks::bench::Run(); }
