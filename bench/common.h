#pragma once

#include <cstdio>
#include <vector>

#include "bench_util/bench_util.h"
#include "core/aggregate.h"
#include "core/block_qc.h"
#include "core/geoblock.h"
#include "storage/sorted_dataset.h"
#include "workload/datagen.h"
#include "workload/polygen.h"
#include "workload/workload.h"

namespace geoblocks::bench {

/// Default dataset sizes at GEOBLOCKS_SCALE=1 (paper sizes are 12M taxi /
/// 8M tweets / 389M OSM; raise the scale to approach them).
inline size_t TaxiPoints() { return bench_util::Scaled(1'000'000); }
inline size_t TweetPoints() { return bench_util::Scaled(500'000); }
inline size_t OsmPoints() { return bench_util::Scaled(1'000'000); }

/// Number of neighborhood query polygons (the paper uses the 195 NYC NTAs).
inline constexpr size_t kNumNeighborhoods = 195;

/// The paper's reference block level for most experiments (~100 m cells).
inline constexpr int kDefaultLevel = 17;

/// The primary experimental environment: taxi data plus neighborhood
/// polygons.
struct TaxiEnv {
  storage::PointTable raw;
  storage::SortedDataset data;
  std::vector<geo::Polygon> neighborhoods;

  static TaxiEnv Create(size_t points, size_t polygons = kNumNeighborhoods) {
    TaxiEnv env;
    env.raw = workload::GenTaxi(points);
    storage::ExtractOptions options;
    options.clean_bounds = workload::NycBounds();
    env.data = storage::SortedDataset::Extract(env.raw, options);
    env.neighborhoods = workload::Neighborhoods(env.raw, polygons);
    return env;
  }
};

/// Runs every query of a workload through `select(polygon)` and returns the
/// total wall-clock milliseconds (result values are folded into a sink so
/// the work cannot be optimized away).
template <typename SelectFn>
double RunSelectWorkload(const workload::Workload& wl,
                         const SelectFn& select) {
  double sink = 0.0;
  bench_util::Timer timer;
  for (const geo::Polygon* poly : wl.queries) {
    const core::QueryResult r = select(*poly);
    sink += static_cast<double>(r.count);
  }
  const double ms = timer.ElapsedMs();
  if (sink < 0) std::printf("impossible\n");
  return ms;
}

/// Pre-computed per-query coverings so measurements isolate the probing
/// phase shared by the covering-based approaches.
inline std::vector<std::vector<cell::CellId>> CoverAll(
    const core::GeoBlock& block, const workload::Workload& wl) {
  std::vector<std::vector<cell::CellId>> coverings;
  coverings.reserve(wl.size());
  for (const geo::Polygon* poly : wl.queries) {
    coverings.push_back(block.Cover(*poly));
  }
  return coverings;
}

/// An AggregateRequest with `n` aggregates over the dataset's columns (the
/// paper requests each column at least once for its 7-aggregate workloads).
inline core::AggregateRequest RequestN(size_t n, size_t num_columns) {
  return core::AggregateRequest::FirstN(n, num_columns);
}

inline void PaperNote(const char* note) {
  std::printf("paper: %s\n", note);
}

}  // namespace geoblocks::bench
