// Reproduces Figure 13: scaling with increasing input sizes — (a) relative
// size overhead and (b) query-runtime increase normalized to the smallest
// input (the paper normalizes to 1M of 100M points; we scale down).
#include "bench/common.h"
#include "index/binary_search.h"
#include "index/btree_index.h"
#include "index/phtree.h"

namespace geoblocks::bench {
namespace {

void Run() {
  bench_util::Banner("Figure 13 — scaling with increasing input sizes",
                     "(a) size overhead, (b) workload runtime relative to "
                     "the smallest input; aRTree omitted (build time), as "
                     "in the paper beyond 30M.");
  const std::vector<size_t> sizes = {
      bench_util::Scaled(100'000), bench_util::Scaled(250'000),
      bench_util::Scaled(500'000), bench_util::Scaled(1'000'000),
      bench_util::Scaled(2'000'000)};

  struct Measured {
    size_t n;
    double block_overhead, btree_overhead, phtree_overhead;
    double bs_ms, block_ms, bt_ms, ph_ms;
  };
  std::vector<Measured> rows;
  for (const size_t n : sizes) {
    const TaxiEnv env = TaxiEnv::Create(n);
    const core::GeoBlock block =
        core::GeoBlock::Build(env.data, {kDefaultLevel, {}});
    const index::BinarySearchIndex bs(&env.data);
    const index::BTreeIndex bt(&env.data);
    const index::PhTreeIndex ph(&env.data);
    const double payload = static_cast<double>(env.data.PayloadBytes());

    const workload::Workload wl = workload::BaseWorkload(env.neighborhoods);
    const auto coverings = CoverAll(block, wl);
    const core::AggregateRequest req = RequestN(7, env.data.num_columns());
    const auto run_covering = [&](const auto& idx) {
      double sink = 0.0;
      bench_util::Timer timer;
      for (const auto& covering : coverings) {
        sink += static_cast<double>(idx.SelectCovering(covering, req).count);
      }
      const double ms = timer.ElapsedMs();
      if (sink < 0) std::printf("impossible\n");
      return ms;
    };
    double ph_ms = 0.0;
    {
      bench_util::Timer timer;
      for (const geo::Polygon* poly : wl.queries) {
        (void)ph.Select(*poly, req);
      }
      ph_ms = timer.ElapsedMs();
    }
    rows.push_back({n, 100.0 * block.MemoryBytes() / payload,
                    100.0 * bt.MemoryBytes() / payload,
                    100.0 * ph.MemoryBytes() / payload, run_covering(bs),
                    run_covering(block), run_covering(bt), ph_ms});
  }

  bench_util::TablePrinter overhead(
      {"points", "Block %", "BTree %", "PHTree %"});
  for (const Measured& m : rows) {
    overhead.AddRow({std::to_string(m.n),
                     bench_util::TablePrinter::Fmt(m.block_overhead, 2),
                     bench_util::TablePrinter::Fmt(m.btree_overhead, 2),
                     bench_util::TablePrinter::Fmt(m.phtree_overhead, 2)});
  }
  std::printf("(a) relative size overhead\n");
  overhead.Print();

  bench_util::TablePrinter runtime({"points", "BinarySearch x", "Block x",
                                    "BTree x", "PHTree x"});
  for (const Measured& m : rows) {
    runtime.AddRow(
        {std::to_string(m.n),
         bench_util::TablePrinter::Fmt(m.bs_ms / rows[0].bs_ms, 2),
         bench_util::TablePrinter::Fmt(m.block_ms / rows[0].block_ms, 2),
         bench_util::TablePrinter::Fmt(m.bt_ms / rows[0].bt_ms, 2),
         bench_util::TablePrinter::Fmt(m.ph_ms / rows[0].ph_ms, 2)});
  }
  std::printf("\n(b) runtime increase relative to the smallest input\n");
  runtime.Print();
  PaperNote(
      "BTree overhead is constant, PHTree compresses better at scale, and "
      "Block overhead *shrinks* relatively (cells depend on the spatial "
      "distribution, not the point count). Runtime: BinarySearch/BTree "
      "scale linearly, PHTree sub-linearly, Block stays nearly constant.");
}

}  // namespace
}  // namespace geoblocks::bench

int main() { geoblocks::bench::Run(); }
