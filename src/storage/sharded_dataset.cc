#include "storage/sharded_dataset.h"

#include <algorithm>

namespace geoblocks::storage {

ShardedDataset ShardedDataset::Partition(const SortedDataset& data,
                                         const ShardOptions& options) {
  ShardedDataset out;
  const size_t k = std::max<size_t>(1, options.num_shards);
  const size_t n = data.num_rows();

  // Row index of each shard's first row. Candidate boundaries split rows
  // evenly; each is snapped down to the first row of the enclosing
  // align-level cell so no cell aggregate can straddle two shards.
  std::vector<size_t> starts(k + 1, n);
  starts[0] = 0;
  for (size_t i = 1; i < k; ++i) {
    size_t candidate = i * n / k;
    if (candidate >= n) {
      starts[i] = n;
      continue;
    }
    const uint64_t key = data.keys()[candidate];
    const cell::CellId align_cell = cell::CellId(key).Parent(options.align_level);
    size_t snapped = data.LowerBound(align_cell.RangeMin().id());
    // Snapping moves boundaries down; never cross the previous boundary.
    starts[i] = std::max(snapped, starts[i - 1]);
  }
  starts[k] = n;

  out.shards_.reserve(k);
  out.boundaries_.resize(k + 1);
  for (size_t i = 0; i < k; ++i) {
    out.shards_.push_back(data.Slice(starts[i], starts[i + 1]));
    // Key-space boundary of the shard: the first key it may contain. The
    // first shard starts at 0; later shards start at their align-cell's
    // RangeMin (or the end of the key space when the shard is empty).
    if (i == 0) {
      out.boundaries_[0] = 0;
    } else if (starts[i] < n) {
      out.boundaries_[i] = cell::CellId(data.keys()[starts[i]])
                               .Parent(options.align_level)
                               .RangeMin()
                               .id();
    } else {
      out.boundaries_[i] = ~uint64_t{0};
    }
  }
  out.boundaries_[k] = ~uint64_t{0};
  return out;
}

}  // namespace geoblocks::storage
