#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <ostream>
#include <string>

#include "geo/point.h"
#include "geo/rect.h"

namespace geoblocks::cell {

/// A 64-bit identifier of a cell in the hierarchical quadtree decomposition
/// of the unit square (paper Section 3.1, Figure 3).
///
/// The encoding mirrors Google S2's face-less cell id algebra:
///
///   id = [0 0 0 | 2*level position bits | 1 | 0...0]
///
/// The 60 position bits are the Hilbert-curve position of the cell's first
/// leaf; the single set bit after them (the "lsb") marks the level. This
/// yields the properties the paper relies on:
///  - ids of all cells at one level are enumerated in Hilbert order
///    (order-preserving space-filling curve),
///  - a cell's descendants occupy the contiguous id range
///    [RangeMin(), RangeMax()], so containment is a pair of comparisons,
///  - parent/child moves are pure bit manipulation.
class CellId {
 public:
  static constexpr int kMaxLevel = 30;

  /// The invalid/null cell id.
  constexpr CellId() : id_(0) {}
  constexpr explicit CellId(uint64_t id) : id_(id) {}

  /// The level-0 cell covering the entire unit square.
  static constexpr CellId Root() { return CellId(uint64_t{1} << 60); }

  /// The leaf cell containing a unit-square point (both coordinates in
  /// [0, 1); values are clamped).
  static CellId FromPoint(const geo::Point& unit_point);

  /// The leaf cell for integer grid coordinates at level 30.
  static CellId FromIJ(uint32_t i, uint32_t j);

  /// The ancestor at `level` of the leaf cell for (i, j).
  static CellId FromIJLevel(uint32_t i, uint32_t j, int level);

  uint64_t id() const { return id_; }
  bool is_valid() const {
    return id_ != 0 && id_ < (uint64_t{1} << 61) &&
           (std::countr_zero(id_) % 2) == 0;
  }
  bool is_leaf() const { return (id_ & 1) != 0; }

  /// Lowest set bit; encodes the level.
  uint64_t lsb() const { return id_ & (~id_ + 1); }

  int level() const {
    return kMaxLevel - (std::countr_zero(id_) >> 1);
  }

  /// Hilbert-curve position of the cell's first leaf, in [0, 4^30).
  uint64_t pos() const { return id_ >> 1; }

  /// First and last leaf-cell id in this cell's subtree (inclusive).
  CellId RangeMin() const { return CellId(id_ - lsb() + 1); }
  CellId RangeMax() const { return CellId(id_ + lsb() - 1); }

  /// True when `other` is this cell or a descendant of it.
  bool Contains(const CellId& other) const {
    return other.id_ >= RangeMin().id_ && other.id_ <= RangeMax().id_;
  }

  bool Intersects(const CellId& other) const {
    return Contains(other) || other.Contains(*this);
  }

  /// Ancestor at the given (coarser or equal) level.
  CellId Parent(int level) const {
    const uint64_t new_lsb = LsbForLevel(level);
    return CellId((id_ & (~new_lsb + 1)) | new_lsb);
  }

  /// Immediate parent.
  CellId Parent() const { return Parent(level() - 1); }

  /// The k-th child (k in [0,4)) in Hilbert order.
  CellId Child(int k) const {
    const uint64_t new_lsb = lsb() >> 2;
    return CellId(id_ - 3 * new_lsb + 2 * static_cast<uint64_t>(k) * new_lsb);
  }

  std::array<CellId, 4> Children() const {
    return {Child(0), Child(1), Child(2), Child(3)};
  }

  /// Index of this cell among its parent's children (Hilbert order).
  int ChildPosition() const {
    return static_cast<int>((id_ >> (std::countr_zero(id_) + 1)) & 3);
  }

  /// First (smallest-id) descendant at `level` (paper Listing 2,
  /// firstChildAtLvl).
  CellId ChildBegin(int level) const {
    return CellId(id_ - lsb() + LsbForLevel(level));
  }

  /// Last (largest-id) descendant at `level` (paper Listing 2,
  /// lastChildAtLvl).
  CellId ChildLast(int level) const {
    return CellId(id_ + lsb() - LsbForLevel(level));
  }

  /// Next/previous cell at this level along the Hilbert curve (may run off
  /// the square; callers bound iteration by range checks).
  CellId Next() const { return CellId(id_ + (lsb() << 1)); }
  CellId Prev() const { return CellId(id_ - (lsb() << 1)); }

  /// Grid coordinates of the cell's lower-left leaf at level 30 together
  /// with the cell's side length in leaf units.
  void ToIJ(uint32_t* i, uint32_t* j, uint32_t* size) const;

  /// Geometric extent of the cell in unit-square coordinates.
  geo::Rect ToRect() const;

  /// Center of the cell in unit-square coordinates.
  geo::Point CenterPoint() const;

  /// Lowest common ancestor of two cells (always exists; may be Root()).
  static CellId CommonAncestor(CellId a, CellId b);

  /// Debug representation "level/childpath", e.g. "3/201".
  std::string ToString() const;

  static constexpr uint64_t LsbForLevel(int level) {
    return uint64_t{1} << (2 * (kMaxLevel - level));
  }

  friend bool operator==(const CellId& a, const CellId& b) {
    return a.id_ == b.id_;
  }
  friend auto operator<=>(const CellId& a, const CellId& b) {
    return a.id_ <=> b.id_;
  }

 private:
  uint64_t id_;
};

inline std::ostream& operator<<(std::ostream& os, const CellId& c) {
  return os << c.ToString();
}

}  // namespace geoblocks::cell
