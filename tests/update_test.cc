#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <sstream>

#include "core/block_qc.h"
#include "core/block_set.h"
#include "core/geoblock.h"
#include "storage/sharded_dataset.h"
#include "util/thread_pool.h"
#include "workload/datagen.h"
#include "workload/polygen.h"

namespace geoblocks::core {
namespace {

class UpdateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    raw_ = workload::GenTaxi(15000, 31);
    storage::ExtractOptions options;
    options.clean_bounds = workload::NycBounds();
    data_ = storage::SortedDataset::Extract(raw_, options);
    block_ = GeoBlock::Build(data_, BlockOptions{15, {}});
  }

  /// A batch of tuples located inside already-populated cells.
  std::vector<GeoBlock::UpdateTuple> InCellBatch(size_t count,
                                                 uint64_t seed) {
    std::mt19937_64 rng(seed);
    std::vector<GeoBlock::UpdateTuple> batch;
    for (size_t i = 0; i < count; ++i) {
      const size_t idx = rng() % block_.num_cells();
      // The center of a populated cell is guaranteed to map back into it.
      const geo::Point unit =
          cell::CellId(block_.cells()[idx]).CenterPoint();
      GeoBlock::UpdateTuple t;
      t.location = data_.projection().FromUnit(unit);
      t.values.assign(data_.num_columns(), 0.0);
      for (size_t c = 0; c < t.values.size(); ++c) {
        t.values[c] = static_cast<double>((rng() % 1000)) / 10.0;
      }
      batch.push_back(std::move(t));
    }
    return batch;
  }

  storage::PointTable raw_;
  storage::SortedDataset data_;
  GeoBlock block_;
};

TEST_F(UpdateTest, AppliedTuplesUpdateCountsAndGlobalHeader) {
  const uint64_t before = block_.header().global.count;
  const auto batch = InCellBatch(100, 1);
  const auto result = block_.ApplyBatchUpdate(batch);
  EXPECT_EQ(result.applied, 100u);
  EXPECT_TRUE(result.rejected.empty());
  EXPECT_EQ(block_.header().global.count, before + 100);
}

TEST_F(UpdateTest, OffsetsStayPrefixSums) {
  const auto batch = InCellBatch(50, 2);
  block_.ApplyBatchUpdate(batch);
  uint32_t running = 0;
  for (size_t i = 0; i < block_.num_cells(); ++i) {
    ASSERT_EQ(block_.offsets()[i], running);
    running += block_.counts()[i];
  }
}

TEST_F(UpdateTest, CountQueriesSeeTheUpdates) {
  const auto polygons = workload::Neighborhoods(raw_, 5, 3);
  std::vector<uint64_t> before;
  for (const geo::Polygon& poly : polygons) {
    before.push_back(block_.Count(poly));
  }
  const auto batch = InCellBatch(200, 4);
  block_.ApplyBatchUpdate(batch);
  // Counts can only grow, and the total growth matches the batch size.
  uint64_t total_before = 0;
  uint64_t total_after = 0;
  for (size_t i = 0; i < polygons.size(); ++i) {
    const uint64_t after = block_.Count(polygons[i]);
    ASSERT_GE(after, before[i]);
    total_before += before[i];
    total_after += after;
  }
  EXPECT_LE(total_after - total_before, 200u);
  // A covering of everything sees all 200 new tuples.
  const std::vector<cell::CellId> all{cell::CellId::Root()};
  EXPECT_EQ(block_.CountCovering(all), data_.num_rows() + 200);
}

TEST_F(UpdateTest, ValuesAffectAggregates) {
  // Push a tuple with an outrageous fare into a known cell and watch the
  // max aggregate move.
  GeoBlock::UpdateTuple t;
  const geo::Point unit = cell::CellId(block_.cells()[0]).CenterPoint();
  t.location = data_.projection().FromUnit(unit);
  t.values.assign(data_.num_columns(), 1.0);
  t.values[0] = 99999.0;  // fare_amount
  const std::vector<GeoBlock::UpdateTuple> single{t};
  const auto result = block_.ApplyBatchUpdate(single);
  ASSERT_EQ(result.applied, 1u);
  EXPECT_EQ(block_.header().global.columns[0].max, 99999.0);
  EXPECT_EQ(block_.cell_columns(0)[0].max, 99999.0);
}

TEST_F(UpdateTest, NewRegionsAreRejected) {
  GeoBlock::UpdateTuple t;
  t.location = {-74.27, 40.49};  // far corner of the domain, surely empty
  t.values.assign(data_.num_columns(), 1.0);
  const uint64_t key =
      cell::CellId::FromPoint(data_.projection().ToUnit(t.location))
          .Parent(block_.level())
          .id();
  const bool cell_exists =
      std::binary_search(block_.cells().begin(), block_.cells().end(), key);
  const std::vector<GeoBlock::UpdateTuple> single{t};
  const auto result = block_.ApplyBatchUpdate(single);
  if (cell_exists) {
    EXPECT_EQ(result.applied, 1u);
  } else {
    EXPECT_EQ(result.applied, 0u);
    ASSERT_EQ(result.rejected.size(), 1u);
    EXPECT_EQ(result.rejected[0], 0u);
  }
}

TEST_F(UpdateTest, RejectedTuplesHandledByRebuild) {
  // The paper's recommended path for new regions: rebuild the aggregate
  // layout (cheap, single pass). Simulate by extending the raw data.
  GeoBlock::UpdateTuple t;
  t.location = {-74.27, 40.49};
  t.values.assign(data_.num_columns(), 2.0);
  storage::PointTable extended = raw_;
  extended.AddRow(t.location, t.values);
  storage::ExtractOptions options;
  options.clean_bounds = workload::NycBounds();
  const auto new_data = storage::SortedDataset::Extract(extended, options);
  const GeoBlock rebuilt = GeoBlock::Build(new_data, BlockOptions{15, {}});
  EXPECT_EQ(rebuilt.header().global.count, data_.num_rows() + 1);
}

TEST_F(UpdateTest, AdaptiveVersionKeepsCacheConsistent) {
  // After updating block + cache, cached answers must still equal base
  // answers — the invariant behind the paper's depth-first cache patch.
  GeoBlockQC qc(&block_, GeoBlockQC::Options{0.25, 0});
  AggregateRequest req;
  req.Add(AggFn::kCount);
  req.Add(AggFn::kSum, 0);
  req.Add(AggFn::kMax, 0);
  const auto polygons = workload::Neighborhoods(raw_, 20, 5);
  for (int round = 0; round < 2; ++round) {
    for (const geo::Polygon& poly : polygons) qc.Select(poly, req);
    qc.RebuildCache();
  }
  ASSERT_GT(qc.trie_snapshot()->num_cached(), 0u);

  const auto batch = InCellBatch(300, 6);
  const auto result = qc.CommitBlockBatch(&block_, batch);
  ASSERT_EQ(result.applied, 300u);

  for (const geo::Polygon& poly : polygons) {
    const QueryResult base = block_.Select(poly, req);
    const QueryResult cached = qc.Select(poly, req);
    ASSERT_EQ(cached.count, base.count);
    for (size_t i = 0; i < base.values.size(); ++i) {
      ASSERT_NEAR(cached.values[i], base.values[i],
                  1e-9 * std::abs(base.values[i]) + 1e-9);
    }
  }
}

TEST_F(UpdateTest, AllRejectedBatchLeavesStateBitIdentical) {
  // Regression for the early-exit: a batch in which every tuple lands in a
  // new region must publish nothing — not even a recomputed offsets array.
  // MVCC makes "bit-identical" checkable by identity: the state pointer is
  // unchanged.
  GeoBlock::UpdateTuple t;
  t.location = {-74.27, 40.49};  // far corner of the domain, surely empty
  t.values.assign(data_.num_columns(), 1.0);
  const uint64_t key =
      cell::CellId::FromPoint(data_.projection().ToUnit(t.location))
          .Parent(block_.level())
          .id();
  if (std::binary_search(block_.cells().begin(), block_.cells().end(), key)) {
    GTEST_SKIP() << "corner cell unexpectedly populated";
  }
  const auto before = block_.StateSnapshot();
  const uint64_t retired_before = block_.retired_states();
  const std::vector<GeoBlock::UpdateTuple> batch{t, t, t};
  const auto result = block_.ApplyBatchUpdate(batch);
  EXPECT_EQ(result.applied, 0u);
  EXPECT_EQ(result.rejected.size(), 3u);
  const auto after = block_.StateSnapshot();
  EXPECT_EQ(before.get(), after.get()) << "all-rejected batch published";
  EXPECT_EQ(block_.retired_states(), retired_before);
}

TEST_F(UpdateTest, InPlacePatchSharesUntouchedCellArray) {
  // Clone-patch-publish copies only the touched arrays: the cell-id array
  // is untouched by an in-place patch and must be shared, not copied.
  const auto before = block_.StateSnapshot();
  const auto batch = InCellBatch(20, 11);
  ASSERT_EQ(block_.ApplyBatchUpdate(batch).applied, 20u);
  const auto after = block_.StateSnapshot();
  ASSERT_NE(before.get(), after.get());
  EXPECT_EQ(before->cells.get(), after->cells.get())
      << "cell-id array was copied by an in-place patch";
  EXPECT_NE(before->counts.get(), after->counts.get());
  EXPECT_NE(before->column_aggs.get(), after->column_aggs.get());
  EXPECT_EQ(block_.retired_states(), 1u);  // the pre-batch version retired
}

TEST_F(UpdateTest, PinnedSnapshotIsBitwiseStableAcrossUpdates) {
  const auto pinned = block_.StateSnapshot();
  const std::vector<cell::CellId> all{cell::CellId::Root()};
  core::AggregateRequest req;
  req.Add(AggFn::kCount);
  req.Add(AggFn::kSum, 0);
  const QueryResult want = pinned->SelectCovering(all, req);
  const uint64_t want_count = pinned->CountCovering(all);

  for (int round = 0; round < 3; ++round) {
    block_.ApplyBatchUpdate(InCellBatch(50, 20 + round));
    const QueryResult got = pinned->SelectCovering(all, req);
    ASSERT_EQ(got.count, want.count);
    ASSERT_EQ(got.values, want.values) << "pinned snapshot drifted";
    ASSERT_EQ(pinned->CountCovering(all), want_count);
  }
  // The live block sees all three batches.
  EXPECT_EQ(block_.CountCovering(all), want_count + 150);
}

TEST_F(UpdateTest, MergeNewRegionTuplesCreatesCells) {
  GeoBlock::UpdateTuple t;
  t.location = {-74.27, 40.49};
  t.values.assign(data_.num_columns(), 5.0);
  const cell::CellId cell =
      cell::CellId::FromPoint(data_.projection().ToUnit(t.location))
          .Parent(block_.level());
  if (std::binary_search(block_.cells().begin(), block_.cells().end(),
                         cell.id())) {
    GTEST_SKIP() << "corner cell unexpectedly populated";
  }
  const uint64_t count_before = block_.header().global.count;
  const std::vector<GeoBlock::UpdateTuple> batch{t, t};
  ASSERT_EQ(block_.ApplyBatchUpdate(batch).rejected.size(), 2u);
  EXPECT_EQ(block_.MergeNewRegionTuples(batch), 1u);  // one new cell, 2 rows

  // The merged layout keeps every invariant: sorted cells, prefix-sum
  // offsets, updated header hull and global, and the new cell queryable.
  for (size_t i = 1; i < block_.num_cells(); ++i) {
    ASSERT_LT(block_.cells()[i - 1], block_.cells()[i]);
  }
  uint32_t running = 0;
  for (size_t i = 0; i < block_.num_cells(); ++i) {
    ASSERT_EQ(block_.offsets()[i], running);
    running += block_.counts()[i];
  }
  EXPECT_EQ(block_.header().global.count, count_before + 2);
  EXPECT_TRUE(block_.MayOverlap(cell));
  const std::vector<cell::CellId> covering{cell};
  EXPECT_EQ(block_.CountCovering(covering), 2u);
  const std::vector<cell::CellId> all{cell::CellId::Root()};
  EXPECT_EQ(block_.CountCovering(all), count_before + 2);

  // A re-merge into the now-existing cell folds in place (no new cell).
  EXPECT_EQ(block_.MergeNewRegionTuples(batch), 0u);
  EXPECT_EQ(block_.CountCovering(covering), 4u);
}

/// BlockSet-level update plane: routing, striped commits, pending buffers,
/// threshold-triggered merge-rebuilds.
class BlockSetUpdateTest : public ::testing::Test {
 protected:
  static constexpr int kLevel = 15;
  static constexpr size_t kShards = 4;

  void SetUp() override {
    raw_ = workload::GenTaxi(15000, 31);
    storage::ExtractOptions options;
    options.clean_bounds = workload::NycBounds();
    data_ = std::make_shared<storage::SortedDataset>(
        storage::SortedDataset::Extract(raw_, options));
    storage::ShardOptions shard_options;
    shard_options.num_shards = kShards;
    shard_options.align_level = kLevel;
    sharded_ = storage::ShardedDataset::Partition(data_, shard_options);
    set_ = BlockSet::Build(sharded_, BlockSetOptions{{kLevel, {}}});
    single_ = GeoBlock::Build(*data_, BlockOptions{kLevel, {}});
  }

  /// Tuples located inside already-populated cells, spread across shards.
  std::vector<GeoBlock::UpdateTuple> InCellBatch(size_t count,
                                                 uint64_t seed) const {
    std::mt19937_64 rng(seed);
    std::vector<GeoBlock::UpdateTuple> batch;
    for (size_t i = 0; i < count; ++i) {
      const size_t idx = rng() % single_.num_cells();
      const geo::Point unit =
          cell::CellId(single_.cells()[idx]).CenterPoint();
      GeoBlock::UpdateTuple t;
      t.location = data_->projection().FromUnit(unit);
      t.values.assign(data_->num_columns(), 0.0);
      for (size_t c = 0; c < t.values.size(); ++c) {
        t.values[c] = static_cast<double>((rng() % 1000)) / 10.0;
      }
      batch.push_back(std::move(t));
    }
    return batch;
  }

  /// Tuples in cells no block aggregates yet (new regions), each cell
  /// distinct.
  std::vector<GeoBlock::UpdateTuple> NewRegionBatch(size_t count,
                                                    uint64_t seed) const {
    std::mt19937_64 rng(seed);
    std::vector<GeoBlock::UpdateTuple> batch;
    std::vector<uint64_t> used;
    while (batch.size() < count) {
      const double x = (static_cast<double>(rng() % 100000) + 0.5) / 100000.0;
      const double y = (static_cast<double>(rng() % 100000) + 0.5) / 100000.0;
      const cell::CellId cell =
          cell::CellId::FromPoint({x, y}).Parent(kLevel);
      if (std::binary_search(single_.cells().begin(), single_.cells().end(),
                             cell.id())) {
        continue;
      }
      if (std::binary_search(used.begin(), used.end(), cell.id())) continue;
      used.insert(std::lower_bound(used.begin(), used.end(), cell.id()),
                  cell.id());
      GeoBlock::UpdateTuple t;
      t.location = data_->projection().FromUnit(cell.CenterPoint());
      t.values.assign(data_->num_columns(), 1.0);
      batch.push_back(std::move(t));
    }
    return batch;
  }

  storage::PointTable raw_;
  std::shared_ptr<storage::SortedDataset> data_;
  storage::ShardedDataset sharded_;
  BlockSet set_;
  GeoBlock single_;
};

TEST_F(BlockSetUpdateTest, RoutedUpdatesMatchSingleBlockBitwise) {
  // The PR 1 invariant — sharded answers bit-identical to one block over
  // the same data — must survive the update plane: routing a batch to
  // shards and applying it to the single block produce the same answers.
  const auto batch = InCellBatch(400, 3);
  const auto set_result = set_.ApplyBatchUpdate(batch);
  const auto single_result = single_.ApplyBatchUpdate(batch);
  EXPECT_EQ(set_result.applied, single_result.applied);
  EXPECT_EQ(set_result.buffered, single_result.rejected.size());
  EXPECT_EQ(set_result.applied, 400u);

  AggregateRequest req;
  req.Add(AggFn::kCount);
  req.Add(AggFn::kSum, 0);
  req.Add(AggFn::kMin, 1);
  req.Add(AggFn::kMax, 2);
  const auto polygons = workload::Neighborhoods(raw_, 20, 9);
  for (const geo::Polygon& poly : polygons) {
    const auto covering = set_.Cover(poly);
    const QueryResult want = single_.SelectCovering(covering, req);
    const QueryResult got = set_.SelectCovering(covering, req);
    ASSERT_EQ(got.count, want.count);
    ASSERT_EQ(got.values, want.values) << "sharded update diverged";
    ASSERT_EQ(set_.CountCovering(covering),
              single_.CountCovering(covering));
  }
}

TEST_F(BlockSetUpdateTest, NewRegionTuplesBufferUntilThreshold) {
  BlockSet::UpdateOptions options;
  options.pending_rebuild_threshold = 0;  // manual flush only
  set_.ConfigureUpdates(options);

  const auto fresh = NewRegionBatch(24, 5);
  const auto result = set_.ApplyBatchUpdate(fresh);
  EXPECT_EQ(result.applied, 0u);
  EXPECT_EQ(result.buffered, 24u);
  EXPECT_EQ(result.rebuilds, 0u);
  EXPECT_EQ(result.pending_after, 24u);
  EXPECT_EQ(set_.PendingUpdateCount(), 24u);

  // Buffered tuples are not queryable yet.
  const std::vector<cell::CellId> all{cell::CellId::Root()};
  const uint64_t base = data_->num_rows();
  EXPECT_EQ(set_.CountCovering(all), base);

  // The flush merges every buffer; the tuples become queryable.
  EXPECT_GT(set_.FlushPendingUpdates(), 0u);
  EXPECT_EQ(set_.PendingUpdateCount(), 0u);
  EXPECT_EQ(set_.CountCovering(all), base + 24);
}

TEST_F(BlockSetUpdateTest, ThresholdTriggersInlineMergeRebuild) {
  BlockSet::UpdateOptions options;
  options.pending_rebuild_threshold = 4;
  set_.ConfigureUpdates(options);

  const auto fresh = NewRegionBatch(40, 6);
  const auto result = set_.ApplyBatchUpdate(fresh);
  EXPECT_EQ(result.buffered, 40u);
  EXPECT_GT(result.rebuilds, 0u);
  // Every shard that crossed the threshold merged inline; only shards
  // below it may still buffer.
  EXPECT_LT(result.pending_after, 40u);
  const std::vector<cell::CellId> all{cell::CellId::Root()};
  EXPECT_EQ(set_.CountCovering(all),
            data_->num_rows() + 40 - result.pending_after);
  set_.FlushPendingUpdates();
  EXPECT_EQ(set_.CountCovering(all), data_->num_rows() + 40);
}

TEST_F(BlockSetUpdateTest, ThresholdMergeOnRebuildPool) {
  util::ThreadPool pool(2);
  BlockSet::UpdateOptions options;
  options.pending_rebuild_threshold = 4;
  options.rebuild_pool = &pool;
  set_.ConfigureUpdates(options);

  const auto fresh = NewRegionBatch(32, 7);
  const auto result = set_.ApplyBatchUpdate(fresh);
  EXPECT_EQ(result.buffered, 32u);
  // Background merges: drain the pool, then everything queued must have
  // merged (crossings while a merge was queued are absorbed by it).
  pool.WaitIdle();
  set_.FlushPendingUpdates();
  const std::vector<cell::CellId> all{cell::CellId::Root()};
  EXPECT_EQ(set_.CountCovering(all), data_->num_rows() + 32);
  EXPECT_EQ(set_.PendingUpdateCount(), 0u);
}

TEST_F(BlockSetUpdateTest, CachedAnswersStayConsistentAfterCommits) {
  set_.EnableCache(GeoBlockQC::Options{0.25, 0});
  AggregateRequest req;
  req.Add(AggFn::kCount);
  req.Add(AggFn::kSum, 0);
  req.Add(AggFn::kMax, 0);
  const auto polygons = workload::Neighborhoods(raw_, 20, 8);
  std::vector<std::vector<cell::CellId>> coverings;
  for (const geo::Polygon& poly : polygons) {
    coverings.push_back(set_.Cover(poly));
  }
  for (int round = 0; round < 2; ++round) {
    for (const auto& covering : coverings) {
      set_.SelectCoveringCached(covering, req);
    }
    set_.RebuildCaches();
  }

  BlockSet::UpdateOptions options;
  options.pending_rebuild_threshold = 8;
  set_.ConfigureUpdates(options);
  auto batch = InCellBatch(300, 10);
  const auto fresh = NewRegionBatch(16, 12);
  batch.insert(batch.end(), fresh.begin(), fresh.end());
  set_.ApplyBatchUpdate(batch);
  set_.FlushPendingUpdates();

  // Cache answers must equal base answers after the commits (the trie was
  // patched inside the same critical sections).
  for (const auto& covering : coverings) {
    const QueryResult base = set_.SelectCovering(covering, req);
    const QueryResult cached = set_.SelectCoveringCached(covering, req);
    ASSERT_EQ(cached.count, base.count);
    for (size_t i = 0; i < base.values.size(); ++i) {
      ASSERT_NEAR(cached.values[i], base.values[i],
                  1e-9 * std::abs(base.values[i]) + 1e-9);
    }
  }
}

TEST_F(BlockSetUpdateTest, LoadedSetAcceptsUpdatesAndReserializes) {
  // docs/FORMAT.md: a loaded (even detached) set accepts updates; its
  // re-serialization persists the updated aggregates, and the relaxed
  // row-count cross-check accepts the grown payloads.
  std::ostringstream out(std::ios::binary);
  set_.WriteTo(out);
  std::istringstream in(out.str(), std::ios::binary);
  BlockSet loaded = BlockSet::ReadFrom(in);
  ASSERT_FALSE(loaded.dataset_attached());

  const auto batch = InCellBatch(100, 13);
  EXPECT_EQ(loaded.ApplyBatchUpdate(batch).applied, 100u);
  const std::vector<cell::CellId> all{cell::CellId::Root()};
  EXPECT_EQ(loaded.CountCovering(all), data_->num_rows() + 100);

  std::ostringstream out2(std::ios::binary);
  loaded.WriteTo(out2);
  std::istringstream in2(out2.str(), std::ios::binary);
  const BlockSet reloaded = BlockSet::ReadFrom(in2);
  EXPECT_EQ(reloaded.CountCovering(all), data_->num_rows() + 100);

  // AttachDataset still validates against the *manifest* (original rows):
  // the updated view intentionally diverges from its base data.
  BlockSet attachable = std::move(loaded);
  attachable.AttachDataset(data_);
  EXPECT_TRUE(attachable.dataset_attached());
}

TEST_F(UpdateTest, TrieUpdateCountsPatchedAggregates) {
  GeoBlockQC qc(&block_, GeoBlockQC::Options{1.0, 0});
  AggregateRequest req;
  req.Add(AggFn::kCount);
  const auto polygons = workload::Neighborhoods(raw_, 10, 7);
  for (const geo::Polygon& poly : polygons) qc.Select(poly, req);
  qc.RebuildCache();
  ASSERT_GT(qc.trie_snapshot()->num_cached(), 0u);

  // A tuple inside some cached cell updates at least one aggregate; a
  // tuple far outside the root updates none.
  const auto batch = InCellBatch(50, 8);
  const auto result = qc.CommitBlockBatch(&block_, batch);
  ASSERT_EQ(result.applied, 50u);

  // Published snapshots are immutable; patch a private copy, the way
  // the commit's copy-on-write path does.
  AggregateTrie trie = *qc.trie_snapshot();
  std::vector<double> values(data_.num_columns(), 1.0);
  EXPECT_EQ(trie.ApplyTupleUpdate(cell::CellId::FromPoint({0.01, 0.99}),
                                  values.data()),
            0u);
}

}  // namespace
}  // namespace geoblocks::core
