// Reproduces Figure 10: query runtime with an increasing number of
// aggregates (1, 2, 4, 8) for BinarySearch, Block and BTree on the combined
// workload (once the base, four times the skewed workload).
#include "bench/common.h"
#include "index/binary_search.h"
#include "index/btree_index.h"

namespace geoblocks::bench {
namespace {

void Run() {
  bench_util::Banner("Figure 10 — runtime vs number of aggregates",
                     "Combined workload: 1x base + 4x skewed (10% of "
                     "neighborhoods); SELECT queries.");
  const TaxiEnv env = TaxiEnv::Create(TaxiPoints());
  const core::GeoBlock block =
      core::GeoBlock::Build(env.data, {kDefaultLevel, {}});
  const index::BinarySearchIndex bs(&env.data);
  const index::BTreeIndex bt(&env.data);

  const workload::Workload base = workload::BaseWorkload(env.neighborhoods);
  const workload::Workload skewed =
      workload::SkewedWorkload(env.neighborhoods);
  const workload::Workload combined =
      workload::CombinedWorkload(base, 1, skewed, 4);
  const auto coverings = CoverAll(block, combined);

  bench_util::TablePrinter table({"aggregates", "BinarySearch ms", "Block ms",
                                  "BTree ms", "Block speedup"});
  for (const size_t n_aggs : {1u, 2u, 4u, 8u}) {
    const core::AggregateRequest req =
        RequestN(n_aggs, env.data.num_columns());
    const auto run = [&](const auto& idx) {
      double sink = 0.0;
      bench_util::Timer timer;
      for (const auto& covering : coverings) {
        sink += static_cast<double>(idx.SelectCovering(covering, req).count);
      }
      const double ms = timer.ElapsedMs();
      if (sink < 0) std::printf("impossible\n");
      return ms;
    };
    const double bs_ms = run(bs);
    const double block_ms = run(block);
    const double bt_ms = run(bt);
    table.AddRow({std::to_string(n_aggs), bench_util::TablePrinter::Fmt(bs_ms),
                  bench_util::TablePrinter::Fmt(block_ms),
                  bench_util::TablePrinter::Fmt(bt_ms),
                  bench_util::TablePrinter::Fmt(
                      std::min(bs_ms, bt_ms) / block_ms, 1) +
                      "x"});
  }
  table.Print();
  PaperNote(
      "GeoBlocks outperform BTree and BinarySearch for all aggregate "
      "counts (64x-73x in the paper); runtimes grow mildly with the number "
      "of aggregates for all approaches.");
}

}  // namespace
}  // namespace geoblocks::bench

int main() { geoblocks::bench::Run(); }
