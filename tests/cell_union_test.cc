#include <gtest/gtest.h>

#include <random>

#include "cell/cell_union.h"
#include "cell/coverer.h"

namespace geoblocks::cell {
namespace {

CellId At(double x, double y, int level) {
  return CellId::FromPoint({x, y}).Parent(level);
}

TEST(CellUnionTest, EmptyUnion) {
  const CellUnion u = CellUnion::FromCells({});
  EXPECT_TRUE(u.empty());
  EXPECT_FALSE(u.Contains(geo::Point{0.5, 0.5}));
  EXPECT_FALSE(u.Intersects(CellId::Root()));
  EXPECT_EQ(u.NumLeaves(), 0u);
}

TEST(CellUnionTest, DropsInvalidAndContainedCells) {
  const CellId parent = At(0.3, 0.3, 5);
  const CellId child = parent.Child(2).Child(1);
  const CellUnion u = CellUnion::FromCells({CellId(), child, parent});
  ASSERT_EQ(u.size(), 1u);
  EXPECT_EQ(u.cells()[0], parent);
}

TEST(CellUnionTest, MergesSiblingQuadruples) {
  const CellId parent = At(0.7, 0.2, 8);
  std::vector<CellId> cells;
  for (int k = 0; k < 4; ++k) cells.push_back(parent.Child(k));
  const CellUnion u = CellUnion::FromCells(std::move(cells));
  ASSERT_EQ(u.size(), 1u);
  EXPECT_EQ(u.cells()[0], parent);
}

TEST(CellUnionTest, MergesRecursively) {
  // All 16 grandchildren collapse to the grandparent.
  const CellId gp = At(0.1, 0.8, 6);
  std::vector<CellId> cells;
  for (int a = 0; a < 4; ++a) {
    for (int b = 0; b < 4; ++b) cells.push_back(gp.Child(a).Child(b));
  }
  const CellUnion u = CellUnion::FromCells(std::move(cells));
  ASSERT_EQ(u.size(), 1u);
  EXPECT_EQ(u.cells()[0], gp);
}

TEST(CellUnionTest, ContainsAndIntersectsCells) {
  const CellId a = At(0.2, 0.2, 6);
  const CellId b = At(0.8, 0.8, 9);
  const CellUnion u = CellUnion::FromCells({a, b});
  EXPECT_TRUE(u.Contains(a));
  EXPECT_TRUE(u.Contains(a.Child(3)));
  EXPECT_TRUE(u.Contains(b));
  EXPECT_FALSE(u.Contains(b.Parent()));     // only part of the parent
  EXPECT_TRUE(u.Intersects(b.Parent()));    // ... but it intersects
  EXPECT_TRUE(u.Intersects(CellId::Root()));
  const CellId far = At(0.5, 0.05, 10);
  EXPECT_FALSE(u.Contains(far));
  EXPECT_FALSE(u.Intersects(far));
}

TEST(CellUnionTest, ContainsPoints) {
  const CellId a = At(0.25, 0.25, 4);
  const CellUnion u = CellUnion::FromCells({a});
  const geo::Rect r = a.ToRect();
  EXPECT_TRUE(u.Contains(r.Center()));
  EXPECT_FALSE(u.Contains(geo::Point{r.max.x + 0.1, r.max.y + 0.1}));
}

TEST(CellUnionTest, UnionOperation) {
  const CellId parent = At(0.6, 0.6, 7);
  const CellUnion left =
      CellUnion::FromCells({parent.Child(0), parent.Child(1)});
  const CellUnion right =
      CellUnion::FromCells({parent.Child(2), parent.Child(3)});
  const CellUnion all = left.Union(right);
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all.cells()[0], parent);
  EXPECT_TRUE(all.Contains(left));
  EXPECT_TRUE(all.Contains(right));
  EXPECT_TRUE(left.Intersects(all));
  EXPECT_FALSE(left.Intersects(right));
}

TEST(CellUnionTest, LeafAndAreaAccounting) {
  const CellId c = At(0.4, 0.4, 28);  // 4^2 = 16 leaves
  const CellUnion u = CellUnion::FromCells({c});
  EXPECT_EQ(u.NumLeaves(), 16u);
  EXPECT_NEAR(u.Area(), c.ToRect().Area(), 1e-18);
}

class CellUnionPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(CellUnionPropertyTest, NormalizationPreservesCoverage) {
  std::mt19937_64 rng(GetParam() * 7001);
  std::uniform_real_distribution<double> uni(0.0, 1.0);
  std::vector<CellId> cells;
  for (int i = 0; i < 40; ++i) {
    cells.push_back(At(uni(rng), uni(rng), 3 + static_cast<int>(rng() % 10)));
  }
  const CellUnion u = CellUnion::FromCells(cells);
  // Normalized: sorted, disjoint.
  for (size_t i = 1; i < u.size(); ++i) {
    ASSERT_LT(u.cells()[i - 1], u.cells()[i]);
    ASSERT_FALSE(u.cells()[i - 1].Intersects(u.cells()[i]));
  }
  // Coverage identical to the raw input: sampled points are in the union
  // iff they are in some input cell.
  for (int t = 0; t < 300; ++t) {
    const geo::Point p{uni(rng), uni(rng)};
    bool in_input = false;
    for (const CellId& c : cells) {
      if (c.ToRect().Contains(p) && c.Contains(CellId::FromPoint(p))) {
        in_input = true;
        break;
      }
    }
    ASSERT_EQ(u.Contains(p), in_input) << "point " << p;
  }
  // Every input cell is contained in the union.
  for (const CellId& c : cells) {
    ASSERT_TRUE(u.Contains(c));
  }
}

TEST_P(CellUnionPropertyTest, CovererOutputIsAlreadyNormalized) {
  std::mt19937_64 rng(GetParam() * 9013);
  std::uniform_real_distribution<double> uni(0.0, 1.0);
  const geo::Polygon poly = geo::Polygon::RegularNGon(
      {0.3 + 0.4 * uni(rng), 0.3 + 0.4 * uni(rng)}, 0.05 + 0.15 * uni(rng),
      3 + static_cast<int>(rng() % 8), uni(rng));
  const PolygonRegion region(&poly);
  CovererOptions options;
  options.max_level = 9 + GetParam() % 4;
  const std::vector<CellId> covering = GetCoveringCells(region, options);
  const CellUnion renormalized = CellUnion::FromCells(covering);
  EXPECT_EQ(renormalized.cells(), covering)
      << "coverer output must be canonical";
}

INSTANTIATE_TEST_SUITE_P(Seeds, CellUnionPropertyTest,
                         ::testing::Range(1, 11));

}  // namespace
}  // namespace geoblocks::cell
