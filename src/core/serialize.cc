// Implementation of every persistent format in the repo (byte-level spec:
// docs/FORMAT.md). Three formats share the serialize.h primitives:
//
//   GeoBlock payload ("GBLK", v2):  level, schema width, projection domain,
//       key range, global aggregate, parallel cell-aggregate arrays, build
//       filter (v2; v1 payloads without the filter are still read).
//   AggregateTrie stream ("GTRI", v1): root cell, schema width, cached
//       entry count, node arena.
//   BlockSet container ("GBST", v2): a CRC-checksummed manifest (shard
//       boundaries, row windows, state row counts, payload table, change
//       number) followed by one GeoBlock payload per shard, each
//       individually checksummed, then a checksummed pending-updates
//       section holding still-buffered new-region tuples.
//
// The WAL ("GWAL") lives in io/update_log.cc; it shares the update-tuple
// codec (core/update_codec.h) with the pending section here.
#include "core/serialize.h"

#include <array>
#include <cstring>
#include <mutex>
#include <sstream>
#include <string>

#include "core/aggregate_trie.h"
#include "core/block_set.h"
#include "core/geoblock.h"
#include "core/memory_governor.h"
#include "core/update_codec.h"
#include "io/mapped_file.h"

namespace geoblocks::core {

namespace serialize {

uint32_t Crc32(std::string_view bytes) {
  // CRC-32/ISO-HDLC, table-driven; the table is built once.
  static const auto table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  uint32_t crc = 0xFFFFFFFFu;
  for (const char ch : bytes) {
    crc = table[(crc ^ static_cast<uint8_t>(ch)) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace serialize

namespace {

using serialize::ReadPod;
using serialize::ReadVector;
using serialize::WritePod;
using serialize::WriteVector;

void WriteAggregateVector(std::ostream& out, const AggregateVector& agg) {
  WritePod<uint64_t>(out, agg.count);
  WriteVector(out, agg.columns);
}

AggregateVector ReadAggregateVector(std::istream& in) {
  AggregateVector agg;
  agg.count = ReadPod<uint64_t>(in);
  agg.columns = ReadVector<ColumnAggregate>(in);
  return agg;
}

void WriteFilter(std::ostream& out, const storage::Filter& filter) {
  WritePod<uint64_t>(out, filter.predicates().size());
  for (const storage::Predicate& p : filter.predicates()) {
    WritePod<int32_t>(out, p.column);
    WritePod<uint32_t>(out, static_cast<uint32_t>(p.op));
    WritePod<double>(out, p.value);
  }
}

storage::Filter ReadFilter(std::istream& in, size_t num_columns) {
  const uint64_t n = ReadPod<uint64_t>(in);
  if (n > serialize::kMaxPayloadBytes / 16) {
    throw std::runtime_error("geoblocks: implausible predicate count");
  }
  std::vector<storage::Predicate> predicates(n);
  for (storage::Predicate& p : predicates) {
    p.column = ReadPod<int32_t>(in);
    if (p.column < 0 || static_cast<size_t>(p.column) >= num_columns) {
      throw std::runtime_error(
          "geoblocks: filter predicate column out of range");
    }
    const uint32_t op = ReadPod<uint32_t>(in);
    if (op > static_cast<uint32_t>(storage::CompareOp::kNe)) {
      throw std::runtime_error("geoblocks: invalid filter operator");
    }
    p.op = static_cast<storage::CompareOp>(op);
    p.value = ReadPod<double>(in);
  }
  return storage::Filter(std::move(predicates));
}

}  // namespace

// ---------------------------------------------------------------------------
// GeoBlock payload ("GBLK")
// ---------------------------------------------------------------------------

void GeoBlock::WriteTo(std::ostream& out) const {
  // The currently published MVCC version is what persists: a block that
  // received updates writes the updated aggregates (docs/FORMAT.md,
  // "Updates and re-serialization").
  const std::shared_ptr<const BlockState> state = StateSnapshot();
  WriteStateTo(out, *state);
}

void GeoBlock::WriteStateTo(std::ostream& out, const BlockState& state_ref)
    const {
  serialize::RequireLittleEndianHost();
  const BlockState* state = &state_ref;
  WritePod(out, serialize::kBlockMagic);
  WritePod(out, serialize::kBlockVersion);
  WritePod<int32_t>(out, state->header.level);
  WritePod<uint64_t>(out, num_columns_);
  const geo::Rect domain = projection_.domain();
  WritePod(out, domain.min.x);
  WritePod(out, domain.min.y);
  WritePod(out, domain.max.x);
  WritePod(out, domain.max.y);
  WritePod<uint64_t>(out, state->header.min_cell);
  WritePod<uint64_t>(out, state->header.max_cell);
  WriteAggregateVector(out, state->header.global);
  WriteVector(out, *state->cells);
  WriteVector(out, *state->offsets);
  WriteVector(out, *state->counts);
  WriteVector(out, *state->min_keys);
  WriteVector(out, *state->max_keys);
  WriteVector(out, *state->column_aggs);
  WriteFilter(out, filter_);
}

GeoBlock GeoBlock::ReadFrom(std::istream& in) {
  serialize::RequireLittleEndianHost();
  if (ReadPod<uint32_t>(in) != serialize::kBlockMagic) {
    throw std::runtime_error("geoblocks: not a GeoBlock stream");
  }
  const uint32_t version = ReadPod<uint32_t>(in);
  if (version < serialize::kBlockMinVersion ||
      version > serialize::kBlockVersion) {
    throw std::runtime_error("geoblocks: unsupported GeoBlock version");
  }
  GeoBlock block;
  auto state = std::make_shared<BlockState>();
  state->header.level = ReadPod<int32_t>(in);
  block.level_ = state->header.level;
  block.num_columns_ = ReadPod<uint64_t>(in);
  state->num_columns = block.num_columns_;
  geo::Rect domain;
  domain.min.x = ReadPod<double>(in);
  domain.min.y = ReadPod<double>(in);
  domain.max.x = ReadPod<double>(in);
  domain.max.y = ReadPod<double>(in);
  block.projection_ = geo::Projection(domain);
  state->header.min_cell = ReadPod<uint64_t>(in);
  state->header.max_cell = ReadPod<uint64_t>(in);
  state->header.global = ReadAggregateVector(in);
  state->cells = std::make_shared<const std::vector<uint64_t>>(
      ReadVector<uint64_t>(in));
  state->offsets = std::make_shared<const std::vector<uint32_t>>(
      ReadVector<uint32_t>(in));
  state->counts = std::make_shared<const std::vector<uint32_t>>(
      ReadVector<uint32_t>(in));
  state->min_keys = std::make_shared<const std::vector<uint64_t>>(
      ReadVector<uint64_t>(in));
  state->max_keys = std::make_shared<const std::vector<uint64_t>>(
      ReadVector<uint64_t>(in));
  state->column_aggs = std::make_shared<const std::vector<ColumnAggregate>>(
      ReadVector<ColumnAggregate>(in));
  if (version >= 2) {
    block.filter_ = ReadFilter(in, block.num_columns_);
  }
  const size_t n = state->cells->size();
  if (state->offsets->size() != n || state->counts->size() != n ||
      state->min_keys->size() != n || state->max_keys->size() != n ||
      state->column_aggs->size() != n * block.num_columns_) {
    throw std::runtime_error("geoblocks: inconsistent GeoBlock arrays");
  }
  block.InstallState(std::move(state));
  return block;
}

// ---------------------------------------------------------------------------
// AggregateTrie stream ("GTRI")
// ---------------------------------------------------------------------------

void AggregateTrie::WriteTo(std::ostream& out) const {
  serialize::RequireLittleEndianHost();
  WritePod(out, serialize::kTrieMagic);
  WritePod(out, serialize::kTrieVersion);
  WritePod<uint64_t>(out, root_cell_.id());
  WritePod<uint64_t>(out, num_columns_);
  WritePod<uint64_t>(out, num_cached_);
  WriteVector(out, arena_);
}

AggregateTrie AggregateTrie::ReadFrom(std::istream& in) {
  serialize::RequireLittleEndianHost();
  if (ReadPod<uint32_t>(in) != serialize::kTrieMagic) {
    throw std::runtime_error("geoblocks: not an AggregateTrie stream");
  }
  if (ReadPod<uint32_t>(in) != serialize::kTrieVersion) {
    throw std::runtime_error("geoblocks: unsupported AggregateTrie version");
  }
  AggregateTrie trie;
  trie.root_cell_ = cell::CellId(ReadPod<uint64_t>(in));
  trie.num_columns_ = ReadPod<uint64_t>(in);
  trie.num_cached_ = ReadPod<uint64_t>(in);
  trie.arena_ = ReadVector<uint8_t>(in);
  return trie;
}

// ---------------------------------------------------------------------------
// BlockSet container ("GBST"): manifest + shard payloads
// ---------------------------------------------------------------------------
//
// Manifest layout (all little-endian; docs/FORMAT.md §BlockSet manifest):
//
//   offset            size      field
//   0                 4         magic "GBST"
//   4                 4         format version (2)
//   8                 4         flags (reserved, 0)
//   12                4         align_level (i32)
//   16                8         shard count K (u64)
//   24                8         total_rows (u64)
//   32                8         change_number (u64)
//   40                (K+1)*8   boundaries[0..K] (u64 leaf keys)
//   40+(K+1)*8        K*16      shard windows: (row_offset u64, num_rows u64)
//   ...               K*8       state_rows: each shard's post-update global
//                               tuple count (u64) — the exact cross-check
//                               target for that shard's payload
//   ...               K*16      payload table: (byte_offset u64, byte_size
//                               u64), offsets relative to the end of the
//                               manifest, contiguous
//   ...               K*4       payload CRC-32s (u32)
//   ...               8         pending_bytes (u64): size of the
//                               pending-updates section after the payloads
//   ...               4         pending section CRC-32 (u32)
//   ...               4         manifest CRC-32 over all preceding bytes
//
// Manifest size: 64 + 52*K bytes. Shard payloads follow back to back, then
// the pending-updates section: per shard in order, u64 tuple count followed
// by that many encoded update tuples (core/update_codec.h).

void BlockSet::WriteTo(std::ostream& out) const {
  serialize::RequireLittleEndianHost();
  const size_t k = blocks_.size();
  if (k == 0 || boundaries_.size() != k + 1 || windows_.size() != k) {
    throw std::logic_error(
        "BlockSet::WriteTo: set has no manifest metadata (only sets from "
        "Build or ReadFrom can be persisted)");
  }

  // Serialize every shard payload first: the manifest needs their sizes
  // and checksums. Each shard's state is pinned ONCE and both the payload
  // and the manifest's state_rows cross-check come from that same pinned
  // version, so the two can never disagree — not even on a lazily opened
  // set where the governor may evict (unpublish) the shard between the
  // two reads. On a lazy set, cold shards are faulted in first (a
  // tombstone has no aggregates to persist).
  std::vector<std::string> payloads;
  std::vector<uint64_t> state_rows;
  payloads.reserve(k);
  state_rows.reserve(k);
  for (size_t i = 0; i < k; ++i) {
    const std::shared_ptr<const BlockState> state =
        source_ != nullptr ? ResidentState(i, /*rebalance=*/false)
                           : blocks_[i]->StateSnapshot();
    std::ostringstream payload(std::ios::binary);
    blocks_[i]->WriteStateTo(payload, *state);
    payloads.push_back(std::move(payload).str());
    state_rows.push_back(state->header.global.count);
  }

  // The pending-updates section: every still-buffered new-region tuple,
  // per shard in order, so buffered tuples survive save → load verbatim
  // instead of silently vanishing below the rebuild threshold.
  std::string pending_section;
  for (size_t i = 0; i < k; ++i) {
    uint64_t count = 0;
    const size_t count_pos = pending_section.size();
    pending_section.append(sizeof(uint64_t), '\0');
    if (i < writers_.size() && writers_[i] != nullptr) {
      ShardWriter& w = *writers_[i];
      std::lock_guard<std::mutex> lock(w.mu);
      count = w.pending.size();
      serialize::EncodeUpdateTuples(&pending_section, w.pending);
    }
    std::memcpy(pending_section.data() + count_pos, &count, sizeof(count));
  }

  std::ostringstream manifest(std::ios::binary);
  WritePod(manifest, serialize::kSetMagic);
  WritePod(manifest, serialize::kSetVersion);
  WritePod<uint32_t>(manifest, 0);  // flags (reserved)
  WritePod<int32_t>(manifest, align_level_);
  WritePod<uint64_t>(manifest, k);
  WritePod<uint64_t>(manifest, total_rows_);
  WritePod<uint64_t>(manifest, change_number());
  for (const uint64_t b : boundaries_) WritePod<uint64_t>(manifest, b);
  for (const ShardWindow& w : windows_) {
    WritePod<uint64_t>(manifest, w.offset);
    WritePod<uint64_t>(manifest, w.num_rows);
  }
  for (const uint64_t rows : state_rows) WritePod<uint64_t>(manifest, rows);
  uint64_t byte_offset = 0;
  for (const std::string& p : payloads) {
    WritePod<uint64_t>(manifest, byte_offset);
    WritePod<uint64_t>(manifest, p.size());
    byte_offset += p.size();
  }
  for (const std::string& p : payloads) {
    WritePod<uint32_t>(manifest, serialize::Crc32(p));
  }
  WritePod<uint64_t>(manifest, pending_section.size());
  WritePod<uint32_t>(manifest, serialize::Crc32(pending_section));
  const std::string manifest_bytes = std::move(manifest).str();
  out.write(manifest_bytes.data(),
            static_cast<std::streamsize>(manifest_bytes.size()));
  WritePod<uint32_t>(out, serialize::Crc32(manifest_bytes));
  for (const std::string& p : payloads) {
    out.write(p.data(), static_cast<std::streamsize>(p.size()));
  }
  out.write(pending_section.data(),
            static_cast<std::streamsize>(pending_section.size()));
  // Persisting a lazy set faulted every cold shard in; hand the overshoot
  // back to the governor now that the payloads are on their way out.
  if (source_ != nullptr && governor_ != nullptr) governor_->EnsureBudget();
}

namespace serialize {

SetManifest ReadSetManifest(std::istream& in) {
  RequireLittleEndianHost();
  // Fixed 40-byte prefix: enough to learn K and size the rest.
  char prefix[40];
  in.read(prefix, sizeof(prefix));
  if (!in) throw std::runtime_error("geoblocks: truncated BlockSet manifest");
  uint32_t magic, version, flags;
  SetManifest m;
  std::memcpy(&magic, prefix + 0, 4);
  std::memcpy(&version, prefix + 4, 4);
  std::memcpy(&flags, prefix + 8, 4);
  std::memcpy(&m.align_level, prefix + 12, 4);
  std::memcpy(&m.shard_count, prefix + 16, 8);
  std::memcpy(&m.total_rows, prefix + 24, 8);
  std::memcpy(&m.change_number, prefix + 32, 8);
  if (magic != kSetMagic) {
    throw std::runtime_error("geoblocks: not a BlockSet stream");
  }
  if (version != kSetVersion) {
    throw std::runtime_error("geoblocks: unsupported BlockSet version");
  }
  if (flags != 0) {
    // All flag bits are reserved; a set bit means a capability this reader
    // does not implement (docs/FORMAT.md §Versioning).
    throw std::runtime_error("geoblocks: unsupported BlockSet flags");
  }
  const uint64_t k = m.shard_count;
  if (k == 0 || k > kMaxManifestShards) {
    throw std::runtime_error("geoblocks: implausible BlockSet shard count");
  }

  // Read the rest of the manifest and verify its checksum before trusting
  // any field.
  const size_t rest_bytes =
      (k + 1) * 8 + k * 16 + k * 8 + k * 16 + k * 4 + 8 + 4 + 4;
  std::string manifest(sizeof(prefix) + rest_bytes, '\0');
  std::memcpy(manifest.data(), prefix, sizeof(prefix));
  in.read(manifest.data() + sizeof(prefix),
          static_cast<std::streamsize>(rest_bytes));
  if (!in) throw std::runtime_error("geoblocks: truncated BlockSet manifest");
  m.manifest_bytes = manifest.size();
  uint32_t stored_crc;
  std::memcpy(&stored_crc, manifest.data() + manifest.size() - 4, 4);
  const std::string_view checksummed(manifest.data(), manifest.size() - 4);
  if (Crc32(checksummed) != stored_crc) {
    throw std::runtime_error("geoblocks: BlockSet manifest checksum mismatch");
  }

  const auto read_u64_at = [&](size_t offset) {
    uint64_t v;
    std::memcpy(&v, manifest.data() + offset, 8);
    return v;
  };
  const auto read_u32_at = [&](size_t offset) {
    uint32_t v;
    std::memcpy(&v, manifest.data() + offset, 4);
    return v;
  };

  size_t pos = sizeof(prefix);
  m.boundaries.resize(k + 1);
  for (size_t i = 0; i <= k; ++i, pos += 8) {
    m.boundaries[i] = read_u64_at(pos);
    if (i > 0 && m.boundaries[i] < m.boundaries[i - 1]) {
      throw std::runtime_error(
          "geoblocks: BlockSet manifest boundaries not ascending");
    }
  }
  m.window_offsets.resize(k);
  m.window_rows.resize(k);
  uint64_t next_row = 0;
  for (size_t i = 0; i < k; ++i, pos += 16) {
    m.window_offsets[i] = read_u64_at(pos);
    m.window_rows[i] = read_u64_at(pos + 8);
    if (m.window_offsets[i] != next_row) {
      throw std::runtime_error(
          "geoblocks: BlockSet manifest windows not contiguous");
    }
    next_row += m.window_rows[i];
  }
  if (next_row != m.total_rows) {
    throw std::runtime_error(
        "geoblocks: BlockSet manifest row total does not match the windows");
  }
  m.state_rows.resize(k);
  for (size_t i = 0; i < k; ++i, pos += 8) m.state_rows[i] = read_u64_at(pos);
  m.payload_offsets.resize(k);
  m.payload_sizes.resize(k);
  uint64_t next_byte = 0;
  for (size_t i = 0; i < k; ++i, pos += 16) {
    m.payload_offsets[i] = read_u64_at(pos);
    m.payload_sizes[i] = read_u64_at(pos + 8);
    if (m.payload_offsets[i] != next_byte ||
        m.payload_sizes[i] > kMaxPayloadBytes) {
      throw std::runtime_error(
          "geoblocks: BlockSet manifest payload table is inconsistent");
    }
    next_byte += m.payload_sizes[i];
  }
  m.payload_bytes = next_byte;
  m.payload_crcs.resize(k);
  for (size_t i = 0; i < k; ++i, pos += 4) {
    m.payload_crcs[i] = read_u32_at(pos);
  }
  m.pending_bytes = read_u64_at(pos);
  pos += 8;
  m.pending_crc = read_u32_at(pos);
  if (m.pending_bytes > kMaxPayloadBytes) {
    throw std::runtime_error(
        "geoblocks: implausible BlockSet pending section size");
  }
  return m;
}

}  // namespace serialize

std::unique_ptr<GeoBlock> BlockSet::ParseShardPayload(
    std::string_view payload, uint32_t expected_crc, uint64_t state_rows,
    uint64_t window_rows, uint64_t manifest_change_number,
    const GeoBlock* reference) {
  if (serialize::Crc32(payload) != expected_crc) {
    throw std::runtime_error(
        "geoblocks: BlockSet shard payload checksum mismatch");
  }
  io::ViewStream payload_stream(payload);
  auto block = std::make_unique<GeoBlock>(GeoBlock::ReadFrom(payload_stream));
  if (payload_stream.peek() != std::istream::traits_type::eof()) {
    throw std::runtime_error(
        "geoblocks: BlockSet shard payload has trailing bytes");
  }
  if (reference != nullptr &&
      (block->level() != reference->level() ||
       block->num_columns() != reference->num_columns())) {
    throw std::runtime_error(
        "geoblocks: BlockSet shards disagree on level or schema width");
  }
  // Exact manifest ↔ payload cross-check: the manifest records each
  // shard's post-update row count (state_rows), so the payload's global
  // count must equal it — no permissive `>=` (docs/FORMAT.md, "Updates
  // and re-serialization").
  if (block->header().global.count != state_rows) {
    throw std::runtime_error(
        "geoblocks: BlockSet shard row count does not match its manifest "
        "state rows");
  }
  // And on a never-updated set without a filter, every window row was
  // aggregated, so the state rows must equal the window exactly.
  if (manifest_change_number == 0 && block->filter().IsTrue() &&
      state_rows != window_rows) {
    throw std::runtime_error(
        "geoblocks: BlockSet shard row count does not match its manifest "
        "window");
  }
  return block;
}

void BlockSet::RestorePendingTuples(std::string_view pending_section,
                                    uint32_t expected_crc) {
  if (serialize::Crc32(pending_section) != expected_crc) {
    throw std::runtime_error(
        "geoblocks: BlockSet pending section checksum mismatch");
  }
  size_t pending_pos = 0;
  const size_t num_columns = blocks_.front()->num_columns();
  for (size_t i = 0; i < blocks_.size(); ++i) {
    if (pending_section.size() - pending_pos < 8) {
      throw std::runtime_error(
          "geoblocks: truncated BlockSet pending section");
    }
    uint64_t count;
    std::memcpy(&count, pending_section.data() + pending_pos, 8);
    pending_pos += 8;
    auto tuples =
        serialize::DecodeUpdateTuples(pending_section, &pending_pos, count);
    for (const GeoBlock::UpdateTuple& t : tuples) {
      if (t.values.size() != num_columns) {
        throw std::runtime_error(
            "geoblocks: BlockSet pending tuple width does not match the "
            "schema");
      }
    }
    ShardWriter& w = *writers_[i];
    w.pending_count.store(tuples.size(), std::memory_order_relaxed);
    w.pending = std::move(tuples);
  }
  if (pending_pos != pending_section.size()) {
    throw std::runtime_error(
        "geoblocks: BlockSet pending section has trailing bytes");
  }
}

BlockSet BlockSet::ReadFrom(std::istream& in) {
  serialize::RequireLittleEndianHost();
  // Shared header pass: the eager and lazy (OpenMapped) loaders validate
  // the same manifest the same way; they differ only in when payload bytes
  // are touched (here: immediately; lazily: on first route to the shard).
  const serialize::SetManifest m = serialize::ReadSetManifest(in);
  const uint64_t k = m.shard_count;

  BlockSet set;
  set.align_level_ = m.align_level;
  set.total_rows_ = m.total_rows;
  set.change_number_.store(m.change_number, std::memory_order_relaxed);
  set.boundaries_ = m.boundaries;
  set.windows_.resize(k);
  for (size_t i = 0; i < k; ++i) {
    set.windows_[i] = {m.window_offsets[i], m.window_rows[i]};
  }

  // Shard payloads: checksum each one, then parse it in isolation so a
  // payload that lies about its length cannot bleed into its neighbor.
  set.blocks_.reserve(k);
  std::string payload;
  for (size_t i = 0; i < k; ++i) {
    payload.resize(m.payload_sizes[i]);
    in.read(payload.data(), static_cast<std::streamsize>(payload.size()));
    if (!in) {
      throw std::runtime_error("geoblocks: truncated BlockSet shard payload");
    }
    set.blocks_.push_back(ParseShardPayload(
        payload, m.payload_crcs[i], m.state_rows[i], m.window_rows[i],
        m.change_number, i == 0 ? nullptr : set.blocks_.front().get()));
    set.writers_.push_back(std::make_shared<BlockSet::ShardWriter>());
  }

  // Pending-updates section: checksum, then restore each shard's buffered
  // new-region tuples exactly as they were saved.
  std::string pending_section(m.pending_bytes, '\0');
  in.read(pending_section.data(),
          static_cast<std::streamsize>(pending_section.size()));
  if (!in) {
    throw std::runtime_error(
        "geoblocks: truncated BlockSet pending section");
  }
  set.RestorePendingTuples(pending_section, m.pending_crc);
  set.level_ = set.blocks_.front()->level();
  set.projection_ = set.blocks_.front()->projection();
  set.dataset_attached_ = false;
  return set;
}

}  // namespace geoblocks::core
