// Per-tenant QoS, end to end: token-bucket unit tests with a manual
// clock, server-level throttling and grey-listing over real sockets,
// queue-full backpressure (typed BUSY, never a silent drop), and the
// audit identities the governor promises:
//
//   requests == admitted + throttled + greylisted          (always)
//   admitted == completed + busy_rejected                  (once quiesced)
//
// The server's batch_hook test seam parks the batcher on a latch so the
// bounded admission queue can be filled deterministically.

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/block_set.h"
#include "server/client.h"
#include "server/qos.h"
#include "server/server.h"
#include "storage/sharded_dataset.h"
#include "util/thread_pool.h"
#include "workload/datagen.h"
#include "workload/polygen.h"

namespace geoblocks {
namespace {

using core::AggFn;
using core::AggregateRequest;
using core::BlockSet;
using core::BlockSetOptions;
using server::Client;
using server::QosOptions;
using server::QueryServer;
using server::ServerError;
using server::ServerOptions;
using server::Status;
using server::TenantCounters;
using server::TenantGovernor;

/// A hand-cranked nanosecond clock for deterministic refill and expiry.
struct ManualClock {
  uint64_t nanos = 0;
  std::function<uint64_t()> fn() {
    return [this] { return nanos; };
  }
  void AdvanceSeconds(double s) {
    nanos += static_cast<uint64_t>(s * 1e9);
  }
};

// ---------------------------------------------------------------------------
// TenantGovernor unit tests (no sockets)
// ---------------------------------------------------------------------------

TEST(TenantGovernorTest, BurstThenThrottleThenRefill) {
  ManualClock clock;
  QosOptions options;
  options.tokens_per_second = 2.0;
  options.burst = 4.0;
  options.clock = clock.fn();
  TenantGovernor governor(options);

  // A new tenant starts with a full bucket: exactly `burst` admissions.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(governor.Admit(1), TenantGovernor::Verdict::kAdmit) << i;
  }
  EXPECT_EQ(governor.Admit(1), TenantGovernor::Verdict::kThrottle);

  // 1.5 s at 2 tokens/s refills 3 tokens.
  clock.AdvanceSeconds(1.5);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(governor.Admit(1), TenantGovernor::Verdict::kAdmit) << i;
  }
  EXPECT_EQ(governor.Admit(1), TenantGovernor::Verdict::kThrottle);

  // Refill caps at burst no matter how long the tenant is idle.
  clock.AdvanceSeconds(3600.0);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(governor.Admit(1), TenantGovernor::Verdict::kAdmit) << i;
  }
  EXPECT_EQ(governor.Admit(1), TenantGovernor::Verdict::kThrottle);
}

TEST(TenantGovernorTest, TenantsAreIsolated) {
  ManualClock clock;
  QosOptions options;
  options.tokens_per_second = 1.0;
  options.burst = 2.0;
  options.clock = clock.fn();
  TenantGovernor governor(options);

  EXPECT_EQ(governor.Admit(1), TenantGovernor::Verdict::kAdmit);
  EXPECT_EQ(governor.Admit(1), TenantGovernor::Verdict::kAdmit);
  EXPECT_EQ(governor.Admit(1), TenantGovernor::Verdict::kThrottle);
  // Tenant 2's bucket is untouched by tenant 1's exhaustion.
  EXPECT_EQ(governor.Admit(2), TenantGovernor::Verdict::kAdmit);
  EXPECT_EQ(governor.Admit(2), TenantGovernor::Verdict::kAdmit);
}

TEST(TenantGovernorTest, GreylistTripsAfterConsecutiveViolationsAndExpires) {
  ManualClock clock;
  QosOptions options;
  options.tokens_per_second = 0.001;  // effectively no refill at test scale
  options.burst = 1.0;
  options.greylist_after = 3;
  options.greylist_nanos = 5'000'000'000;  // 5 s
  options.clock = clock.fn();
  TenantGovernor governor(options);

  EXPECT_EQ(governor.Admit(9), TenantGovernor::Verdict::kAdmit);
  // Three consecutive throttles trip the grey-list...
  EXPECT_EQ(governor.Admit(9), TenantGovernor::Verdict::kThrottle);
  EXPECT_EQ(governor.Admit(9), TenantGovernor::Verdict::kThrottle);
  EXPECT_EQ(governor.Admit(9), TenantGovernor::Verdict::kThrottle);
  EXPECT_TRUE(governor.IsGreylisted(9));
  // ...and while listed, requests are rejected as greylisted, not
  // throttled.
  EXPECT_EQ(governor.Admit(9), TenantGovernor::Verdict::kGreylist);
  EXPECT_EQ(governor.Admit(9), TenantGovernor::Verdict::kGreylist);

  // The window expires; the tenant is back to plain rate limiting.
  clock.AdvanceSeconds(6.0);
  EXPECT_FALSE(governor.IsGreylisted(9));
  EXPECT_NE(governor.Admit(9), TenantGovernor::Verdict::kGreylist);

  // Counters: every Admit() landed in exactly one bucket.
  const auto snapshot = governor.Snapshot();
  ASSERT_EQ(snapshot.size(), 1u);
  const TenantCounters& c = snapshot.front().second;
  EXPECT_EQ(c.requests, 7u);
  EXPECT_EQ(c.requests, c.admitted + c.throttled + c.greylisted);
  EXPECT_EQ(c.greylisted, 2u);
}

TEST(TenantGovernorTest, SuccessfulAdmitResetsViolationStreak) {
  ManualClock clock;
  QosOptions options;
  options.tokens_per_second = 1.0;
  options.burst = 1.0;
  options.greylist_after = 3;
  options.clock = clock.fn();
  TenantGovernor governor(options);

  EXPECT_EQ(governor.Admit(4), TenantGovernor::Verdict::kAdmit);
  EXPECT_EQ(governor.Admit(4), TenantGovernor::Verdict::kThrottle);
  EXPECT_EQ(governor.Admit(4), TenantGovernor::Verdict::kThrottle);
  clock.AdvanceSeconds(1.0);  // one token back; admit resets the streak
  EXPECT_EQ(governor.Admit(4), TenantGovernor::Verdict::kAdmit);
  EXPECT_EQ(governor.Admit(4), TenantGovernor::Verdict::kThrottle);
  EXPECT_EQ(governor.Admit(4), TenantGovernor::Verdict::kThrottle);
  // Only 2 consecutive violations since the reset: still not grey-listed.
  EXPECT_FALSE(governor.IsGreylisted(4));
}

TEST(TenantGovernorTest, DisabledLimiterAdmitsEverythingButStillCounts) {
  TenantGovernor governor(QosOptions{});  // tokens_per_second == 0
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(governor.Admit(3), TenantGovernor::Verdict::kAdmit);
  }
  const auto snapshot = governor.Snapshot();
  ASSERT_EQ(snapshot.size(), 1u);
  EXPECT_EQ(snapshot.front().second.requests, 100u);
  EXPECT_EQ(snapshot.front().second.admitted, 100u);
}

// ---------------------------------------------------------------------------
// Server-level QoS over real sockets
// ---------------------------------------------------------------------------

class ServerQosTest : public ::testing::Test {
 protected:
  static constexpr int kLevel = 15;

  static void SetUpTestSuite() {
    const storage::PointTable raw = workload::GenTaxi(8000, 29);
    storage::ExtractOptions extract;
    extract.clean_bounds = workload::NycBounds();
    data_ = new storage::SortedDataset(
        storage::SortedDataset::Extract(raw, extract));
    storage::ShardOptions shard_options;
    shard_options.num_shards = 2;
    shard_options.align_level = kLevel;
    sharded_ = new storage::ShardedDataset(
        storage::ShardedDataset::Partition(*data_, shard_options));
    pool_ = new util::ThreadPool(2);
    polygons_ = new std::vector<geo::Polygon>(
        workload::Neighborhoods(raw, 4, 29));
  }

  static void TearDownTestSuite() {
    delete polygons_;
    delete pool_;
    delete sharded_;
    delete data_;
    polygons_ = nullptr;
    pool_ = nullptr;
    sharded_ = nullptr;
    data_ = nullptr;
  }

  static BlockSet BuildSet() {
    return BlockSet::Build(*sharded_, BlockSetOptions{{kLevel, {}}}, pool_);
  }

  /// Issues one COUNT and classifies the outcome.
  static Status CountStatus(Client& client) {
    try {
      (void)client.Count(polygons_->front());
      return Status::kOk;
    } catch (const ServerError& e) {
      return e.status;
    }
  }

  static storage::SortedDataset* data_;
  static storage::ShardedDataset* sharded_;
  static util::ThreadPool* pool_;
  static std::vector<geo::Polygon>* polygons_;
};

storage::SortedDataset* ServerQosTest::data_ = nullptr;
storage::ShardedDataset* ServerQosTest::sharded_ = nullptr;
util::ThreadPool* ServerQosTest::pool_ = nullptr;
std::vector<geo::Polygon>* ServerQosTest::polygons_ = nullptr;

TEST_F(ServerQosTest, ThrottledTenantGetsTypedErrorWhileOthersProceed) {
  ManualClock clock;
  BlockSet set = BuildSet();
  ServerOptions options;
  options.pool = pool_;
  options.qos.tokens_per_second = 1e-6;  // no meaningful refill
  options.qos.burst = 5.0;
  options.qos.clock = clock.fn();
  QueryServer server(&set, options);
  server.Start();

  Client::Options a_opts;
  a_opts.tenant = 1;
  Client a = Client::Connect(server.port(), a_opts);
  Client::Options b_opts;
  b_opts.tenant = 2;
  Client b = Client::Connect(server.port(), b_opts);

  int a_ok = 0;
  int a_throttled = 0;
  for (int i = 0; i < 10; ++i) {
    const Status s = CountStatus(a);
    if (s == Status::kOk) ++a_ok;
    if (s == Status::kThrottled) ++a_throttled;
  }
  EXPECT_EQ(a_ok, 5);         // exactly the burst
  EXPECT_EQ(a_throttled, 5);  // typed throttle, connection stays open
  // Tenant B is unaffected by A's exhaustion.
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(CountStatus(b), Status::kOk) << i;
  }
  // PING and STATS bypass QoS: the throttled tenant can still health-check
  // and audit itself.
  EXPECT_EQ(a.Ping("still-here"), "still-here");
  EXPECT_FALSE(a.Stats().empty());
  server.Stop();
}

TEST_F(ServerQosTest, GreylistTripsOverTheWireAndExpires) {
  ManualClock clock;
  BlockSet set = BuildSet();
  ServerOptions options;
  options.pool = pool_;
  options.qos.tokens_per_second = 1e-6;
  options.qos.burst = 1.0;
  options.qos.greylist_after = 3;
  options.qos.greylist_nanos = 2'000'000'000;
  options.qos.clock = clock.fn();
  QueryServer server(&set, options);
  server.Start();

  Client::Options copts;
  copts.tenant = 7;
  Client client = Client::Connect(server.port(), copts);
  EXPECT_EQ(CountStatus(client), Status::kOk);
  EXPECT_EQ(CountStatus(client), Status::kThrottled);
  EXPECT_EQ(CountStatus(client), Status::kThrottled);
  EXPECT_EQ(CountStatus(client), Status::kThrottled);  // trips the list
  EXPECT_EQ(CountStatus(client), Status::kGreylisted);
  EXPECT_EQ(CountStatus(client), Status::kGreylisted);
  EXPECT_TRUE(server.governor().IsGreylisted(7));

  clock.AdvanceSeconds(3.0);  // window expires (and refills ~nothing)
  EXPECT_FALSE(server.governor().IsGreylisted(7));
  EXPECT_EQ(CountStatus(client), Status::kThrottled);
  server.Stop();
}

TEST_F(ServerQosTest, QueueFullIsTypedBusyNeverASilentDrop) {
  BlockSet set = BuildSet();

  // Park the batcher inside its first drain so the bounded queue can be
  // filled deterministically: capacity 2, one request held by the hook.
  std::mutex hook_mu;
  std::condition_variable hook_cv;
  bool entered = false;
  bool release = false;
  ServerOptions options;
  options.pool = pool_;
  options.queue_capacity = 2;
  options.max_batch = 1;
  options.batch_hook = [&] {
    std::unique_lock<std::mutex> lock(hook_mu);
    entered = true;
    hook_cv.notify_all();
    hook_cv.wait(lock, [&] { return release; });
  };
  QueryServer server(&set, options);
  server.Start();

  // One request pulls the batcher into the hook.
  std::thread first([&] {
    Client c = Client::Connect(server.port());
    EXPECT_EQ(CountStatus(c), Status::kOk);
  });
  {
    std::unique_lock<std::mutex> lock(hook_mu);
    hook_cv.wait(lock, [&] { return entered; });
  }

  // With the batcher parked, exactly `queue_capacity` more requests fit;
  // the rest must get typed BUSY (and keep their connections).
  constexpr int kProbes = 5;
  std::vector<std::thread> probes;
  std::atomic<int> ok{0};
  std::atomic<int> busy{0};
  std::atomic<int> other{0};
  for (int i = 0; i < kProbes; ++i) {
    probes.emplace_back([&] {
      Client c = Client::Connect(server.port());
      switch (CountStatus(c)) {
        case Status::kOk:
          ok.fetch_add(1);
          break;
        case Status::kBusy:
          busy.fetch_add(1);
          // The connection survives a BUSY: a retry on the same socket
          // still works once capacity frees up.
          break;
        default:
          other.fetch_add(1);
          break;
      }
    });
  }
  // BUSY responses are written by reader threads immediately; wait until
  // every probe beyond capacity has been answered, then release.
  for (;;) {
    if (busy.load() >= kProbes - 2) break;
    std::this_thread::yield();
  }
  {
    std::lock_guard<std::mutex> lock(hook_mu);
    release = true;
  }
  hook_cv.notify_all();
  for (std::thread& p : probes) p.join();
  first.join();

  EXPECT_EQ(ok.load(), 2) << "exactly queue_capacity requests admitted";
  EXPECT_EQ(busy.load(), 3) << "the rest got typed BUSY";
  EXPECT_EQ(other.load(), 0);
  server.Stop();

  // Audit: nothing dropped silently. 6 requests total; every admitted one
  // either completed or was busy-rejected.
  const auto snapshot = server.governor().Snapshot();
  ASSERT_EQ(snapshot.size(), 1u);
  const TenantCounters& c = snapshot.front().second;
  EXPECT_EQ(c.requests, 6u);
  EXPECT_EQ(c.requests, c.admitted + c.throttled + c.greylisted);
  EXPECT_EQ(c.admitted, c.completed + c.busy_rejected);
  EXPECT_EQ(c.busy_rejected, 3u);
  EXPECT_EQ(c.completed, 3u);
}

TEST_F(ServerQosTest, StatsCommandReconcilesExactlyWithClientOutcomes) {
  ManualClock clock;
  BlockSet set = BuildSet();
  ServerOptions options;
  options.pool = pool_;
  options.qos.tokens_per_second = 1e-6;
  options.qos.burst = 8.0;
  options.qos.clock = clock.fn();
  QueryServer server(&set, options);
  server.Start();

  // Three tenants issue traffic concurrently; each records its own
  // outcomes client-side.
  struct Outcome {
    uint64_t ok = 0;
    uint64_t throttled = 0;
    uint64_t sent = 0;
  };
  std::vector<Outcome> outcomes(3);
  std::vector<std::thread> workers;
  for (uint32_t t = 0; t < 3; ++t) {
    workers.emplace_back([&, t] {
      Client::Options copts;
      copts.tenant = 100 + t;
      Client client = Client::Connect(server.port(), copts);
      for (int i = 0; i < 12; ++i) {
        ++outcomes[t].sent;
        const Status s = CountStatus(client);
        if (s == Status::kOk) ++outcomes[t].ok;
        if (s == Status::kThrottled) ++outcomes[t].throttled;
      }
    });
  }
  for (std::thread& w : workers) w.join();

  // Every client has its responses in hand, so STATS must already be
  // fully reconciled (counters land before responses are written).
  Client auditor = Client::Connect(server.port());
  std::map<std::string, uint64_t> stats;
  for (const auto& [key, value] : auditor.Stats()) stats[key] = value;
  for (uint32_t t = 0; t < 3; ++t) {
    const std::string prefix = "tenant." + std::to_string(100 + t) + ".";
    EXPECT_EQ(stats[prefix + "requests"], outcomes[t].sent);
    EXPECT_EQ(stats[prefix + "admitted"], outcomes[t].ok);
    EXPECT_EQ(stats[prefix + "completed"], outcomes[t].ok);
    EXPECT_EQ(stats[prefix + "throttled"], outcomes[t].throttled);
    EXPECT_EQ(stats[prefix + "requests"],
              stats[prefix + "admitted"] + stats[prefix + "throttled"] +
                  stats[prefix + "greylisted"]);
    EXPECT_EQ(stats[prefix + "admitted"],
              stats[prefix + "completed"] + stats[prefix + "busy"]);
    EXPECT_EQ(outcomes[t].ok, 8u) << "burst of 8, no refill";
    EXPECT_EQ(outcomes[t].throttled, 4u);
  }
  server.Stop();
}

}  // namespace
}  // namespace geoblocks
