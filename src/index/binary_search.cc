#include "index/binary_search.h"

#include "cell/coverer.h"

namespace geoblocks::index {

std::vector<cell::CellId> BinarySearchIndex::Cover(
    const geo::Polygon& polygon, int cover_level) const {
  const geo::Polygon unit = data_->projection().ToUnit(polygon);
  const cell::PolygonRegion region(&unit);
  cell::CovererOptions options;
  options.max_level = cover_level;
  return cell::GetCoveringCells(region, options);
}

core::QueryResult BinarySearchIndex::Select(
    const geo::Polygon& polygon, const core::AggregateRequest& request,
    int cover_level) const {
  return SelectCovering(Cover(polygon, cover_level), request);
}

core::QueryResult BinarySearchIndex::SelectCovering(
    std::span<const cell::CellId> covering,
    const core::AggregateRequest& request) const {
  core::Accumulator acc(&request);
  for (const cell::CellId& qcell : covering) {
    const auto [first, last] = data_->EqualRangeForCell(qcell);
    for (size_t row = first; row < last; ++row) {
      acc.AddRow([&](int col) { return data_->Value(row, col); });
    }
  }
  return acc.Finish();
}

uint64_t BinarySearchIndex::Count(const geo::Polygon& polygon,
                                  int cover_level) const {
  return CountCovering(Cover(polygon, cover_level));
}

uint64_t BinarySearchIndex::CountCovering(
    std::span<const cell::CellId> covering) const {
  uint64_t count = 0;
  for (const cell::CellId& qcell : covering) {
    const auto [first, last] = data_->EqualRangeForCell(qcell);
    count += last - first;
  }
  return count;
}

}  // namespace geoblocks::index
