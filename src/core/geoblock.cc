#include "core/geoblock.h"

#include <algorithm>
#include <span>
#include <stdexcept>
#include <utility>

namespace geoblocks::core {

GeoBlock GeoBlock::Build(storage::DatasetView data,
                         const BlockOptions& options) {
  GeoBlock block;
  block.data_ = std::move(data);
  block.filter_ = options.filter;
  const storage::DatasetView& view = block.data_;
  block.header_.level = options.level;
  if (view.has_data()) {
    block.projection_ = view.projection();
    block.num_columns_ = view.num_columns();
  }
  block.header_.global = AggregateVector(block.num_columns_);

  const uint64_t lsb = cell::CellId::LsbForLevel(options.level);
  const storage::Filter& filter = options.filter;
  const auto value_of = [&](size_t row) {
    return [&, row](int col) { return view.Value(row, col); };
  };

  const std::span<const uint64_t> keys = view.keys();
  uint64_t current_cell = 0;
  uint32_t matched_so_far = 0;  // offset into the filtered tuple sequence
  const size_t n = view.num_rows();
  for (size_t row = 0; row < n; ++row) {
    if (!filter.IsTrue() && !filter.Matches(value_of(row))) continue;
    const uint64_t key = keys[row];
    const uint64_t cell_id = (key & (~lsb + 1)) | lsb;
    if (cell_id != current_cell) {
      block.cells_.push_back(cell_id);
      block.offsets_.push_back(matched_so_far);
      block.counts_.push_back(0);
      block.min_keys_.push_back(key);
      block.max_keys_.push_back(key);
      block.column_aggs_.resize(block.column_aggs_.size() +
                                block.num_columns_);
      current_cell = cell_id;
    }
    const size_t idx = block.cells_.size() - 1;
    ++block.counts_[idx];
    ++matched_so_far;
    block.max_keys_[idx] = key;
    ColumnAggregate* cols =
        block.column_aggs_.data() + idx * block.num_columns_;
    ++block.header_.global.count;
    for (size_t c = 0; c < block.num_columns_; ++c) {
      const double v = view.Value(row, c);
      cols[c].Add(v);
      block.header_.global.columns[c].Add(v);
    }
  }

  if (!block.cells_.empty()) {
    block.header_.min_cell = block.cells_.front();
    block.header_.max_cell = block.cells_.back();
  }
  return block;
}

GeoBlock GeoBlock::CoarsenTo(int level) const {
  GeoBlock block;
  block.data_ = data_;
  block.filter_ = filter_;
  block.projection_ = projection_;
  block.num_columns_ = num_columns_;
  block.header_.level = level;
  block.header_.global = header_.global;
  if (level >= header_.level) {
    // Refining requires the base data; same level is a copy.
    if (level == header_.level) return *this;
    if (!data_.has_data()) {
      // Deserialized blocks are self-contained cell aggregates without base
      // rows; they can coarsen but not refine.
      throw std::logic_error(
          "GeoBlock::CoarsenTo: refining requires the base data");
    }
    // Re-scan the base rows under the block's own filter so a refined
    // filtered block aggregates exactly the rows the original did.
    return Build(data_, BlockOptions{level, filter_});
  }

  const uint64_t lsb = cell::CellId::LsbForLevel(level);
  uint64_t current_cell = 0;
  for (size_t i = 0; i < cells_.size(); ++i) {
    const uint64_t parent = (cells_[i] & (~lsb + 1)) | lsb;
    if (parent != current_cell) {
      block.cells_.push_back(parent);
      block.offsets_.push_back(offsets_[i]);
      block.counts_.push_back(0);
      block.min_keys_.push_back(min_keys_[i]);
      block.max_keys_.push_back(max_keys_[i]);
      block.column_aggs_.resize(block.column_aggs_.size() + num_columns_);
      current_cell = parent;
    }
    const size_t idx = block.cells_.size() - 1;
    block.counts_[idx] += counts_[i];
    block.max_keys_[idx] = max_keys_[i];
    ColumnAggregate* dst = block.column_aggs_.data() + idx * num_columns_;
    const ColumnAggregate* src = cell_columns(i);
    for (size_t c = 0; c < num_columns_; ++c) dst[c].Merge(src[c]);
  }
  if (!block.cells_.empty()) {
    block.header_.min_cell = block.cells_.front();
    block.header_.max_cell = block.cells_.back();
  }
  return block;
}

void GeoBlock::AttachData(storage::DatasetView view) {
  if (data_.has_data()) {
    throw std::logic_error(
        "GeoBlock::AttachData: block already has base data; DetachData "
        "first");
  }
  if (view.has_data() && view.num_columns() != num_columns_) {
    throw std::runtime_error(
        "GeoBlock::AttachData: view column count does not match the block");
  }
  data_ = std::move(view);
}

std::vector<cell::CellId> CoverPolygon(const geo::Projection& projection,
                                       int level,
                                       const geo::Polygon& polygon) {
  std::vector<cell::CellId> covering;
  CoverPolygonInto(projection, level, polygon, &covering);
  return covering;
}

void CoverPolygonInto(const geo::Projection& projection, int level,
                      const geo::Polygon& polygon,
                      std::vector<cell::CellId>* out) {
  const geo::Polygon unit = projection.ToUnit(polygon);
  const cell::PolygonRegion region(&unit);
  cell::CovererOptions options;
  options.max_level = level;
  cell::GetCoveringCellsInto(region, options, out);
}

std::vector<cell::CellId> GeoBlock::Cover(const geo::Polygon& polygon) const {
  return CoverPolygon(projection_, header_.level, polygon);
}

size_t GeoBlock::SeekFirst(uint64_t key, size_t last_idx) const {
  // Listing 1: after a match, first try the successor of the last combined
  // aggregate before falling back to binary search.
  if (last_idx != kNoLastAgg) {
    const size_t next = last_idx + 1;
    if (next >= cells_.size()) return cells_.size();
    if (cells_[next] >= key && (next == 0 || cells_[next - 1] < key)) {
      // The successor is exactly the first aggregate >= key only when the
      // previous one is below; since query cells arrive in ascending order
      // and last_idx was consumed, cells_[last_idx] < key always holds.
      return next;
    }
    return static_cast<size_t>(
        std::lower_bound(cells_.begin() + next, cells_.end(), key) -
        cells_.begin());
  }
  return static_cast<size_t>(
      std::lower_bound(cells_.begin(), cells_.end(), key) - cells_.begin());
}

QueryResult GeoBlock::Select(const geo::Polygon& polygon,
                             const AggregateRequest& request) const {
  const std::vector<cell::CellId> covering = Cover(polygon);
  return SelectCovering(covering, request);
}

void GeoBlock::CombineCell(cell::CellId qcell, Accumulator* acc,
                           size_t* last_idx) const {
  // Covering cells are never finer than the grid; clamp defensively.
  if (qcell.level() > header_.level) qcell = qcell.Parent(header_.level);
  // Prune query cells outside [minCell, maxCell] (Listing 1, lines 5-6).
  if (!MayOverlap(qcell)) return;
  const uint64_t first_child = qcell.ChildBegin(header_.level).id();
  const uint64_t last_child = qcell.ChildLast(header_.level).id();
  size_t idx = SeekFirst(first_child, *last_idx);
  // Contiguous scan over the sorted cell aggregates (Listing 1, 25-28).
  while (idx < cells_.size() && cells_[idx] <= last_child) {
    acc->AddAggregate(counts_[idx], cell_columns(idx));
    *last_idx = idx;
    ++idx;
  }
}

QueryResult GeoBlock::SelectCovering(std::span<const cell::CellId> covering,
                                     const AggregateRequest& request) const {
  Accumulator acc(&request);
  size_t last_idx = kNoLastAgg;
  for (const cell::CellId& qcell : covering) {
    CombineCell(qcell, &acc, &last_idx);
  }
  return acc.Finish();
}

uint64_t GeoBlock::Count(const geo::Polygon& polygon) const {
  const std::vector<cell::CellId> covering = Cover(polygon);
  return CountCovering(covering);
}

uint64_t GeoBlock::CountCovering(
    std::span<const cell::CellId> covering) const {
  uint64_t result = 0;
  size_t hint = 0;
  for (cell::CellId qcell : covering) {
    if (qcell.level() > header_.level) qcell = qcell.Parent(header_.level);
    if (!MayOverlap(qcell)) continue;
    const uint64_t f_child = qcell.ChildBegin(header_.level).id();
    const uint64_t l_child = qcell.ChildLast(header_.level).id();
    // Locate the first and last contained aggregate (Listing 2, lines 8-9);
    // the second search starts from the first, and both reuse the position
    // of the previous query cell as a hint (query cells ascend).
    const size_t first = static_cast<size_t>(
        std::lower_bound(cells_.begin() + hint, cells_.end(), f_child) -
        cells_.begin());
    const size_t last_plus_one = static_cast<size_t>(
        std::upper_bound(cells_.begin() + first, cells_.end(), l_child) -
        cells_.begin());
    hint = first;
    if (last_plus_one <= first) continue;
    const size_t last = last_plus_one - 1;
    // Range-sum over offsets (Listing 2, line 11).
    result += static_cast<uint64_t>(offsets_[last]) + counts_[last] -
              offsets_[first];
  }
  return result;
}

AggregateVector GeoBlock::AggregateForCell(cell::CellId cell) const {
  AggregateVector agg(num_columns_);
  if (cell.level() > header_.level) cell = cell.Parent(header_.level);
  if (!MayOverlap(cell)) return agg;
  const uint64_t first_child = cell.ChildBegin(header_.level).id();
  const uint64_t last_child = cell.ChildLast(header_.level).id();
  size_t idx = static_cast<size_t>(
      std::lower_bound(cells_.begin(), cells_.end(), first_child) -
      cells_.begin());
  while (idx < cells_.size() && cells_[idx] <= last_child) {
    agg.count += counts_[idx];
    const ColumnAggregate* cols = cell_columns(idx);
    for (size_t c = 0; c < num_columns_; ++c) agg.columns[c].Merge(cols[c]);
    ++idx;
  }
  return agg;
}

GeoBlock::UpdateResult GeoBlock::ApplyBatchUpdate(
    std::span<const UpdateTuple> batch) {
  UpdateResult result;
  const uint64_t lsb = cell::CellId::LsbForLevel(header_.level);
  for (size_t b = 0; b < batch.size(); ++b) {
    const UpdateTuple& tuple = batch[b];
    const uint64_t key =
        cell::CellId::FromPoint(projection_.ToUnit(tuple.location))
            .id();
    const uint64_t cell_id = (key & (~lsb + 1)) | lsb;
    const auto it = std::lower_bound(cells_.begin(), cells_.end(), cell_id);
    if (it == cells_.end() || *it != cell_id) {
      // New, previously unaggregated region: the sorted layout has no slot
      // for it (Section 5 — requires a rebuild, ideally batched).
      result.rejected.push_back(b);
      continue;
    }
    const size_t idx = static_cast<size_t>(it - cells_.begin());
    ++counts_[idx];
    min_keys_[idx] = std::min(min_keys_[idx], key);
    max_keys_[idx] = std::max(max_keys_[idx], key);
    ColumnAggregate* cols = column_aggs_.data() + idx * num_columns_;
    ++header_.global.count;
    for (size_t c = 0; c < num_columns_; ++c) {
      cols[c].Add(tuple.values[c]);
      header_.global.columns[c].Add(tuple.values[c]);
    }
    ++result.applied;
  }
  // Restore the prefix-sum invariant of the offsets in one pass.
  uint32_t running = 0;
  for (size_t i = 0; i < cells_.size(); ++i) {
    offsets_[i] = running;
    running += counts_[i];
  }
  return result;
}

size_t GeoBlock::CellAggregateBytes() const {
  return cells_.size() * (sizeof(uint64_t) * 3 + sizeof(uint32_t) * 2) +
         column_aggs_.size() * sizeof(ColumnAggregate);
}

size_t GeoBlock::MemoryBytes() const {
  return sizeof(BlockHeader) +
         header_.global.columns.size() * sizeof(ColumnAggregate) +
         CellAggregateBytes();
}

}  // namespace geoblocks::core
