#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "cell/cell_id.h"

namespace geoblocks::core {

/// Workload statistics used to decide which areas are worth caching
/// (Section 3.6, "Determining Relevant Aggregates"): for each query cell
/// that intersects the GeoBlock we track how often it was queried, in a
/// trie-like keyed structure (cell ids *are* trie paths).
class QueryStats {
 public:
  /// Records one occurrence of a query (covering) cell.
  void Record(cell::CellId cell) { ++hits_[cell.id()]; }

  uint32_t HitsFor(cell::CellId cell) const {
    const auto it = hits_.find(cell.id());
    return it == hits_.end() ? 0 : it->second;
  }

  /// Score of a cell: its own hits plus its parent's hits — child cells can
  /// be used to speed up queries for parent cells.
  uint32_t Score(cell::CellId cell) const {
    uint32_t s = HitsFor(cell);
    if (cell.level() > 0) s += HitsFor(cell.Parent());
    return s;
  }

  /// All recorded cells ordered by descending score, then ascending level
  /// (coarser first), then ascending spatial key — the deterministic
  /// ranking of Section 3.6.
  std::vector<cell::CellId> RankedCells() const;

  size_t num_distinct_cells() const { return hits_.size(); }
  void Clear() { hits_.clear(); }

 private:
  std::unordered_map<uint64_t, uint32_t> hits_;
};

}  // namespace geoblocks::core
