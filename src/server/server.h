#pragma once

/// \file server.h
/// The stand-alone query server: a TCP listener + connection acceptor in
/// front of a BlockSet, turning the library into a system. One reader
/// thread per connection decodes length-prefixed frames
/// (server/protocol.h), passes SELECT / COUNT / UPDATE requests through
/// per-tenant QoS (server/qos.h) into a bounded admission queue
/// (server/admission_queue.h); a single batcher thread drains the queue
/// and coalesces what it finds into the engine's batched seams — one
/// QueryBatch per distinct aggregate request, one CountBatch, one
/// ApplyBatchUpdate per drain — executed on the work-stealing ThreadPool.
/// PING and STATS are answered inline by the reader thread (health checks
/// and audits must work even when the tenant is throttled or the queue is
/// full, so they bypass QoS and admission).
///
/// Durability: when the BlockSet has an attached UpdateLog, an UPDATE is
/// acknowledged (Status::kOk with its change number) only after the
/// coalesced batch is fsync'd — ApplyBatchUpdate's persist-first contract
/// carries through the wire unchanged. A dead log (crash, injected fail
/// point) turns into Status::kInternal: explicitly NOT acknowledged, so
/// recovery via BlockSet::OpenLogged restores exactly the acknowledged
/// prefix (tests/server_serving_test.cc pins this end to end).
///
/// Lifecycle: Start() binds and serves; Stop() drains gracefully (stop
/// accepting, answer new work with kShuttingDown, execute the already
/// admitted backlog, then close connections); Abort() simulates a crash
/// (admitted-but-unanswered requests die unanswered, connections drop).
/// See docs/ARCHITECTURE.md §Serving.
///
/// Fault containment (docs/ARCHITECTURE.md §Failure containment): a dead
/// WAL no longer takes reads down with it — the BlockSet turns sticky
/// read-only, UPDATEs are answered Status::kReadOnly without touching the
/// engine, and SELECT / COUNT / PING / STATS keep serving (PING v2 and
/// STATS report the degradation). Per-connection poll deadlines bound how
/// long a stalled peer can hold a reader thread (slow-loris defense): a
/// connection idle past `idle_timeout_ms`, or stuck mid-frame past
/// `read_timeout_ms`, or not draining responses past `write_timeout_ms`,
/// is reaped without affecting other connections. Requests carrying a v2
/// deadline that expires while queued are answered Status::kTimeout
/// instead of being executed late. Fenced UPDATE retries (protocol v2) are
/// answered from a bounded per-server acknowledgment window so a retry
/// whose first ack was lost is never applied twice.

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/block_set.h"
#include "server/admission_queue.h"
#include "server/protocol.h"
#include "server/qos.h"
#include "util/io_shim.h"
#include "util/thread_pool.h"

namespace geoblocks::server {

struct ServerOptions {
  /// TCP port on 127.0.0.1; 0 binds an ephemeral port (read it back via
  /// port() — the test/bench harness default).
  uint16_t port = 0;
  /// Admission queue capacity; request #capacity+1 gets Status::kBusy.
  size_t queue_capacity = 1024;
  /// Maximum requests one drain coalesces into a batch epoch.
  size_t max_batch = 64;
  /// Frames with a larger length prefix are refused (kTooLarge) unread.
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Per-tenant rate limiting / grey-listing policy.
  QosOptions qos;
  /// Execution pool for the coalesced batches (null executes inline on
  /// the batcher thread). Must outlive the server.
  util::ThreadPool* pool = nullptr;
  /// Test hook: when set, the batcher calls it before executing each
  /// drained batch. tests/server_qos_test.cc parks the batcher on a latch
  /// here to fill the admission queue deterministically. Null in
  /// production.
  std::function<void()> batch_hook;
  /// Reap a connection that has been idle (no frame started) this long;
  /// 0 disables. Idle peers are the cheap kind of stall — this bounds how
  /// many parked reader threads they can accumulate.
  int64_t idle_timeout_ms = 0;
  /// Reap a connection that started a frame (length prefix arrived) but
  /// has not delivered the rest within this budget; 0 disables. This is
  /// the slow-loris defense: a half-written frame cannot park a reader
  /// thread forever.
  int64_t read_timeout_ms = 0;
  /// Reap a connection that stops draining its responses for this long
  /// (blocked send); 0 disables.
  int64_t write_timeout_ms = 0;
  /// How many fenced UPDATE acknowledgments the server remembers for
  /// retry deduplication, across all tenants (FIFO eviction; entries are
  /// keyed by tenant + fence). The window is in-memory only — it does not
  /// survive a server restart (see docs/PROTOCOL.md §Retries for the
  /// residual crash-retry caveat).
  size_t update_dedup_window = 1024;
  /// Injectable clock for request-deadline arithmetic, milliseconds on an
  /// arbitrary monotone epoch. Null uses std::chrono::steady_clock. Tests
  /// advance a fake clock to expire queued requests without real sleeps.
  std::function<int64_t()> clock;
  /// Syscall fault injection for the connection I/O paths (send/recv
  /// through util::IoShim). Null uses the real syscalls. Testing only.
  util::IoShim* shim = nullptr;
  /// The memory governor behind a lazily opened set
  /// (core::BlockSet::OpenMapped), when one is in play. Null for
  /// fully-resident sets. When set, STATS reports the memory.* keys
  /// (docs/PROTOCOL.md §STATS). Must outlive the server.
  const core::MemoryGovernor* memory = nullptr;
};

/// Point-in-time server counters (see QueryServer::stats and the STATS
/// command, which serves these plus the per-tenant audit counters).
struct ServerStats {
  uint64_t connections_accepted = 0;
  uint64_t frames_received = 0;
  uint64_t malformed_frames = 0;   ///< undecodable or schema-invalid
  uint64_t oversized_frames = 0;   ///< length prefix over max_frame_bytes
  uint64_t queue_rejected = 0;     ///< admitted by QoS, bounced by the queue
  uint64_t batches_executed = 0;   ///< drain epochs
  uint64_t selects_executed = 0;
  uint64_t counts_executed = 0;
  uint64_t updates_executed = 0;   ///< UPDATE requests answered OK
  uint64_t update_tuples = 0;      ///< tuples committed through the wire
  uint64_t select_groups = 0;      ///< QueryBatches formed (coalescing meter)
  uint64_t queue_depth = 0;        ///< point-in-time backlog
  uint64_t connections_reaped = 0; ///< closed by idle/read/write deadline
  uint64_t requests_timed_out = 0; ///< answered kTimeout (deadline expired)
  uint64_t read_only_rejected = 0; ///< UPDATEs answered kReadOnly
  uint64_t update_dedup_hits = 0;  ///< fenced retries answered from the window
};

/// The server. Construct over a built (or loaded) BlockSet, Start(), and
/// connect Clients (server/client.h). The set, pool, and any attached
/// UpdateLog must outlive the server.
class QueryServer {
 public:
  /// @param set     The engine to serve; must have at least one shard.
  /// @param options Listener, admission, and QoS configuration.
  /// @throws std::invalid_argument when `set` is null or empty.
  QueryServer(core::BlockSet* set, ServerOptions options);

  /// Stop()s if still running.
  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// Binds 127.0.0.1:port, starts the acceptor and batcher threads.
  /// @throws std::runtime_error on socket/bind/listen failure.
  void Start();

  /// Graceful shutdown: stops accepting, answers new requests with
  /// kShuttingDown, drains and executes the admitted backlog (every
  /// admitted request gets its response), then closes every connection
  /// and joins all threads. Idempotent.
  void Stop();

  /// Simulated crash: stops accepting, discards the admitted backlog
  /// unanswered, drops every connection, joins all threads. What survives
  /// is exactly what the WAL acknowledged — the serving recovery test's
  /// entry point. Idempotent (shares the stopped state with Stop).
  void Abort();

  /// @return The bound port (after Start; the ephemeral port when
  ///     options.port was 0).
  uint16_t port() const { return port_; }

  /// @return Point-in-time server counters.
  ServerStats stats() const;

  /// @return The per-tenant admission governor (audit counters).
  const TenantGovernor& governor() const { return governor_; }

 private:
  struct Connection;

  /// One admitted request parked in the queue between its reader thread
  /// and the batcher. Owns its decoded payload; QueryBatch borrows
  /// pointers into the drained vector (stable while the epoch executes).
  struct PendingRequest {
    Opcode opcode = Opcode::kPing;
    uint32_t tenant = 0;
    uint64_t cookie = 0;
    std::shared_ptr<Connection> conn;
    geo::Polygon polygon;
    core::AggregateRequest aggregates;
    std::vector<core::GeoBlock::UpdateTuple> tuples;
    uint64_t fence = 0;        ///< UPDATE idempotence token (0 = unfenced)
    int64_t deadline_at_ms = 0;  ///< clock value the request expires at; 0=none
    /// Released when this request dies (answered or discarded); the
    /// reader's EOF path waits on it before closing the connection.
    std::shared_ptr<void> inflight_token;
  };

  void AcceptLoop();
  void ReadLoop(std::shared_ptr<Connection> conn);
  void BatchLoop();

  /// Handles one decoded request on the reader thread: PING/STATS inline,
  /// the rest through QoS + admission. Returns false when the connection
  /// must close (schema-invalid request).
  bool Dispatch(const std::shared_ptr<Connection>& conn, Request&& request);

  /// Executes one drained batch epoch: coalesced counts, per-request-
  /// signature QueryBatches, and one ApplyBatchUpdate, then writes every
  /// response.
  void ExecuteEpoch(std::vector<PendingRequest>& batch);

  /// Writes a response frame to `conn` (serialized per connection;
  /// write errors are ignored — the peer is gone).
  void WriteResponse(const std::shared_ptr<Connection>& conn, Status status,
                     uint64_t cookie, std::string_view payload);

  /// @return True when `request`'s columns fit the served schema.
  bool ValidateSchema(const Request& request) const;

  /// @return The injectable clock's current value in milliseconds
  ///     (steady_clock when no clock was injected).
  int64_t NowMs() const;

  std::vector<std::pair<std::string, uint64_t>> BuildStats() const;

  /// Shared teardown of Stop/Abort; `discard` picks crash semantics.
  void StopInternal(bool discard);

  core::BlockSet* set_;
  ServerOptions options_;
  size_t num_columns_ = 0;
  TenantGovernor governor_;
  AdmissionQueue<PendingRequest> queue_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopped_{false};
  std::atomic<bool> draining_{false};

  std::thread acceptor_;
  std::thread batcher_;
  std::mutex conns_mu_;
  std::vector<std::shared_ptr<Connection>> connections_;
  std::vector<std::thread> readers_;

  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> frames_received_{0};
  std::atomic<uint64_t> malformed_frames_{0};
  std::atomic<uint64_t> oversized_frames_{0};
  std::atomic<uint64_t> batches_executed_{0};
  std::atomic<uint64_t> selects_executed_{0};
  std::atomic<uint64_t> counts_executed_{0};
  std::atomic<uint64_t> updates_executed_{0};
  std::atomic<uint64_t> update_tuples_{0};
  std::atomic<uint64_t> select_groups_{0};
  std::atomic<uint64_t> connections_reaped_{0};
  std::atomic<uint64_t> requests_timed_out_{0};
  std::atomic<uint64_t> read_only_rejected_{0};
  std::atomic<uint64_t> update_dedup_hits_{0};

  /// Fenced-UPDATE acknowledgment window: (tenant, fence) -> the ack the
  /// original apply earned, so a retry is answered instead of re-applied.
  /// Touched only by the batcher thread (single consumer), so no mutex;
  /// `dedup_fifo_` bounds it to options_.update_dedup_window entries per
  /// eviction sweep (FIFO). The stats() path reads only the atomic hit
  /// counter, never the map.
  std::map<std::pair<uint32_t, uint64_t>, UpdateAck> update_dedup_;
  std::deque<std::pair<uint32_t, uint64_t>> dedup_fifo_;
};

}  // namespace geoblocks::server
