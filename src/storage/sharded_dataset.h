#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "cell/cell_id.h"
#include "storage/sorted_dataset.h"

namespace geoblocks::storage {

struct ShardOptions {
  /// Number of shards K to cut the dataset into. Shards are contiguous
  /// Hilbert-key ranges, so every shard is itself a valid SortedDataset.
  size_t num_shards = 4;
  /// Shard boundaries are snapped to grid-cell boundaries at this level:
  /// no cell at `align_level` (or any finer level) spans two shards. Blocks
  /// built over the shards at a level >= align_level therefore never split
  /// a cell aggregate across shards, which keeps sharded query results
  /// bit-identical to a single-block execution. Use the (coarsest) block
  /// level you intend to build.
  int align_level = 17;
};

/// A SortedDataset partitioned into K contiguous Hilbert-key ranges — the
/// storage side of the sharded query engine. Because the space-filling
/// curve preserves locality, each shard covers a compact spatial region,
/// and the per-shard `[min_cell, max_cell]` block headers stay selective
/// for query routing.
class ShardedDataset {
 public:
  ShardedDataset() = default;

  /// Cuts `data` into `options.num_shards` contiguous key ranges of
  /// near-equal row counts, with boundaries snapped down to the enclosing
  /// cell boundary at `options.align_level`. Skewed data may yield empty
  /// shards; they are kept so shard indices remain stable.
  static ShardedDataset Partition(const SortedDataset& data,
                                  const ShardOptions& options);

  size_t num_shards() const { return shards_.size(); }
  const SortedDataset& shard(size_t i) const { return shards_[i]; }
  const std::vector<SortedDataset>& shards() const { return shards_; }

  /// Leaf-key boundaries: shard i holds rows whose key falls in
  /// [boundaries()[i], boundaries()[i + 1]). Size is num_shards() + 1.
  const std::vector<uint64_t>& boundaries() const { return boundaries_; }

  size_t total_rows() const {
    size_t n = 0;
    for (const SortedDataset& s : shards_) n += s.num_rows();
    return n;
  }

  size_t MemoryBytes() const {
    size_t bytes = boundaries_.size() * sizeof(uint64_t);
    for (const SortedDataset& s : shards_) bytes += s.MemoryBytes();
    return bytes;
  }

 private:
  std::vector<SortedDataset> shards_;
  std::vector<uint64_t> boundaries_;
};

}  // namespace geoblocks::storage
