// Multithreaded stress suite for the lock-free cached read path: N reader
// threads hammer mixed SELECT/COUNT workloads against a BlockSet's per-shard
// GeoBlockQC caches while rebuilds publish new trie snapshots underneath
// them. Run under ThreadSanitizer in CI (GEOBLOCKS_TSAN).
//
// The correctness contract being pinned:
//  * For a *frozen* snapshot (no rebuild between queries), concurrent
//    cached SELECTs are bit-identical to a single-threaded pass — the read
//    path has no mode where scheduling can change an answer.
//  * Under concurrent rebuilds, every SELECT still sees exactly one
//    snapshot per shard probe, so counts are exact and values match the
//    uncached answer to last-ulp FP tolerance (cached cells fold
//    pre-merged sums); COUNT bypasses the cache and is always exact.
//  * Counter accounting is exact after quiescing; merged counters are
//    monotone between resets even when sampled mid-flight.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include "core/block_set.h"
#include "util/thread_pool.h"
#include "workload/datagen.h"
#include "workload/polygen.h"

namespace geoblocks {
namespace {

using core::AggFn;
using core::AggregateRequest;
using core::BlockSet;
using core::BlockSetOptions;
using core::CacheCounters;
using core::GeoBlockQC;
using core::QueryResult;

class ConcurrencyStressTest : public ::testing::Test {
 protected:
  static constexpr int kLevel = 15;
  static constexpr size_t kShards = 4;
  static constexpr size_t kReaders = 4;

  static void SetUpTestSuite() {
    raw_ = new storage::PointTable(workload::GenTaxi(20000, 77));
    storage::ExtractOptions options;
    options.clean_bounds = workload::NycBounds();
    data_ = new storage::SortedDataset(
        storage::SortedDataset::Extract(*raw_, options));
    storage::ShardOptions shard_options;
    shard_options.num_shards = kShards;
    shard_options.align_level = kLevel;
    sharded_ = new storage::ShardedDataset(
        storage::ShardedDataset::Partition(*data_, shard_options));
    polygons_ = new std::vector<geo::Polygon>(
        workload::Neighborhoods(*raw_, 24, 5));
  }
  static void TearDownTestSuite() {
    delete polygons_;
    delete sharded_;
    delete data_;
    delete raw_;
    polygons_ = nullptr;
    sharded_ = nullptr;
    data_ = nullptr;
    raw_ = nullptr;
  }

  static AggregateRequest Request() {
    AggregateRequest req;
    req.Add(AggFn::kCount);
    req.Add(AggFn::kSum, 0);
    req.Add(AggFn::kMin, 1);
    req.Add(AggFn::kMax, 2);
    req.Add(AggFn::kAvg, 3);
    return req;
  }

  static std::vector<std::vector<cell::CellId>> CoverAll(
      const BlockSet& set) {
    std::vector<std::vector<cell::CellId>> coverings;
    for (const geo::Polygon& poly : *polygons_) {
      coverings.push_back(set.Cover(poly));
    }
    return coverings;
  }

  static storage::PointTable* raw_;
  static storage::SortedDataset* data_;
  static storage::ShardedDataset* sharded_;
  static std::vector<geo::Polygon>* polygons_;
};

storage::PointTable* ConcurrencyStressTest::raw_ = nullptr;
storage::SortedDataset* ConcurrencyStressTest::data_ = nullptr;
storage::ShardedDataset* ConcurrencyStressTest::sharded_ = nullptr;
std::vector<geo::Polygon>* ConcurrencyStressTest::polygons_ = nullptr;

TEST_F(ConcurrencyStressTest, FrozenSnapshotIsBitIdenticalAcrossThreads) {
  // Warm the caches deterministically, freeze them (no rebuild interval),
  // and require every concurrent reader to reproduce the single-threaded
  // pass bit for bit — SELECT values compared with ==, not tolerance.
  BlockSet set = BlockSet::Build(*sharded_, BlockSetOptions{{kLevel, {}}});
  set.EnableCache(GeoBlockQC::Options{0.10, /*rebuild_interval=*/0});
  const AggregateRequest req = Request();
  const auto coverings = CoverAll(set);

  for (int round = 0; round < 2; ++round) {
    for (const auto& covering : coverings) {
      set.SelectCoveringCached(covering, req);
    }
    set.RebuildCaches();
  }

  std::vector<QueryResult> want_select;
  std::vector<uint64_t> want_count;
  for (const auto& covering : coverings) {
    want_select.push_back(set.SelectCoveringCached(covering, req));
    want_count.push_back(set.CountCovering(covering));
  }

  constexpr size_t kRounds = 8;
  std::vector<std::vector<QueryResult>> got(kReaders);
  std::vector<std::vector<uint64_t>> got_counts(kReaders);
  std::vector<std::thread> readers;
  for (size_t t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      for (size_t r = 0; r < kRounds; ++r) {
        for (size_t i = 0; i < coverings.size(); ++i) {
          if ((i + r + t) % 3 == 0) {
            got_counts[t].push_back(set.CountCovering(coverings[i]));
          }
          got[t].push_back(set.SelectCoveringCached(coverings[i], req));
        }
      }
    });
  }
  for (std::thread& t : readers) t.join();

  for (size_t t = 0; t < kReaders; ++t) {
    size_t gi = 0;
    size_t ci = 0;
    for (size_t r = 0; r < kRounds; ++r) {
      for (size_t i = 0; i < coverings.size(); ++i) {
        if ((i + r + t) % 3 == 0) {
          ASSERT_EQ(got_counts[t][ci++], want_count[i])
              << "reader " << t << " covering " << i;
        }
        const QueryResult& g = got[t][gi++];
        ASSERT_EQ(g.count, want_select[i].count) << "reader " << t;
        ASSERT_EQ(g.values, want_select[i].values)
            << "reader " << t << " covering " << i
            << ": cached SELECT not bit-identical";
      }
    }
  }
}

TEST_F(ConcurrencyStressTest, MixedWorkloadWithConcurrentRebuilds) {
  // Readers run mixed SELECT/COUNT while a writer thread keeps publishing
  // fresh snapshots and interval-triggered rebuilds fire from the readers
  // themselves. Answers must stay correct throughout: counts exact,
  // values within last-ulp tolerance of the uncached reference.
  BlockSet set = BlockSet::Build(*sharded_, BlockSetOptions{{kLevel, {}}});
  set.EnableCache(GeoBlockQC::Options{0.10, /*rebuild_interval=*/16});
  const AggregateRequest req = Request();
  const auto coverings = CoverAll(set);

  std::vector<QueryResult> want_select;
  std::vector<uint64_t> want_count;
  for (const auto& covering : coverings) {
    want_select.push_back(set.SelectCovering(covering, req));
    want_count.push_back(set.CountCovering(covering));
  }

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> checked{0};
  std::thread rebuilder([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      set.RebuildCaches();
      set.MergedCacheCounters();  // concurrent merged reads must be safe
    }
  });

  constexpr size_t kRounds = 10;
  std::vector<std::thread> readers;
  for (size_t t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      for (size_t r = 0; r < kRounds; ++r) {
        for (size_t i = 0; i < coverings.size(); ++i) {
          if ((i + t) % 2 == 0) {
            const uint64_t count = set.CountCovering(coverings[i]);
            ASSERT_EQ(count, want_count[i]) << "reader " << t;
          }
          const QueryResult got =
              set.SelectCoveringCached(coverings[i], req);
          ASSERT_EQ(got.count, want_select[i].count)
              << "reader " << t << " covering " << i;
          for (size_t v = 0; v < got.values.size(); ++v) {
            ASSERT_NEAR(got.values[v], want_select[i].values[v],
                        1e-9 * std::abs(want_select[i].values[v]) + 1e-6)
                << "reader " << t << " covering " << i << " value " << v;
          }
          checked.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : readers) t.join();
  stop.store(true, std::memory_order_relaxed);
  rebuilder.join();

  EXPECT_EQ(checked.load(), kReaders * kRounds * coverings.size());
  // Quiesced: the counter identity must hold exactly.
  const CacheCounters after = set.MergedCacheCounters();
  EXPECT_EQ(after.probes,
            after.full_hits + after.partial_hits + after.misses);
}

TEST_F(ConcurrencyStressTest, CounterAccountingExactAfterQuiescing) {
  // (kReaders + 1) identical passes over cold, frozen tries: every probe
  // is a miss and the relaxed counters must add up exactly — the lock-free
  // plane loses no increment.
  BlockSet set = BlockSet::Build(*sharded_, BlockSetOptions{{kLevel, {}}});
  set.EnableCache(GeoBlockQC::Options{0.05, 0});
  const AggregateRequest req = Request();
  const auto coverings = CoverAll(set);

  for (const auto& covering : coverings) {
    set.SelectCoveringCached(covering, req);
  }
  const CacheCounters base = set.MergedCacheCounters();
  ASSERT_GT(base.probes, 0u);
  ASSERT_EQ(base.probes, base.misses);

  std::vector<std::thread> readers;
  for (size_t t = 0; t < kReaders; ++t) {
    readers.emplace_back([&] {
      for (const auto& covering : coverings) {
        set.SelectCoveringCached(covering, req);
      }
    });
  }
  for (std::thread& t : readers) t.join();

  const CacheCounters after = set.MergedCacheCounters();
  EXPECT_EQ(after.probes, (kReaders + 1) * base.probes);
  EXPECT_EQ(after.misses, after.probes);

  // Stats plane: per-shard distinct cells are unchanged by re-running the
  // same workload concurrently, and nothing was dropped.
  for (size_t s = 0; s < set.num_shards(); ++s) {
    EXPECT_EQ(set.cached_shard(s).stats().dropped(), 0u) << "shard " << s;
  }
}

TEST_F(ConcurrencyStressTest, MergedCountersAreMonotoneUnderLoad) {
  BlockSet set = BlockSet::Build(*sharded_, BlockSetOptions{{kLevel, {}}});
  set.EnableCache(GeoBlockQC::Options{0.05, 0});
  const AggregateRequest req = Request();
  const auto coverings = CoverAll(set);

  std::atomic<bool> stop{false};
  std::thread sampler([&] {
    CacheCounters last;
    while (!stop.load(std::memory_order_relaxed)) {
      const CacheCounters now = set.MergedCacheCounters();
      // Each field is monotone between resets (and we never reset here).
      ASSERT_GE(now.probes, last.probes);
      ASSERT_GE(now.full_hits, last.full_hits);
      ASSERT_GE(now.partial_hits, last.partial_hits);
      ASSERT_GE(now.misses, last.misses);
      last = now;
    }
  });

  std::vector<std::thread> readers;
  for (size_t t = 0; t < 2; ++t) {
    readers.emplace_back([&] {
      for (size_t r = 0; r < 6; ++r) {
        for (const auto& covering : coverings) {
          set.SelectCoveringCached(covering, req);
        }
      }
    });
  }
  for (std::thread& t : readers) t.join();
  stop.store(true, std::memory_order_relaxed);
  sampler.join();
}

TEST_F(ConcurrencyStressTest, BackgroundPoolRebuildKeepsServing) {
  // The ThreadPool rebuild hook: interval crossings submit the rebuild to
  // a pool, so no query thread ever pays the trie construction. After the
  // pool drains, the cache must be warm and answers unchanged.
  util::ThreadPool pool(2);
  BlockSet set = BlockSet::Build(*sharded_, BlockSetOptions{{kLevel, {}}});
  GeoBlockQC::Options options;
  options.threshold = 0.10;
  options.rebuild_interval = 8;
  options.rebuild_pool = &pool;
  set.EnableCache(options);
  const AggregateRequest req = Request();
  const auto coverings = CoverAll(set);

  std::vector<QueryResult> want;
  for (const auto& covering : coverings) {
    want.push_back(set.SelectCovering(covering, req));
  }

  std::vector<std::thread> readers;
  for (size_t t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      for (size_t r = 0; r < 6; ++r) {
        for (size_t i = 0; i < coverings.size(); ++i) {
          const QueryResult got =
              set.SelectCoveringCached(coverings[i], req);
          ASSERT_EQ(got.count, want[i].count) << "reader " << t;
        }
      }
    });
  }
  for (std::thread& t : readers) t.join();
  // Drain pending background rebuilds before inspecting (and before the
  // set goes out of scope — the documented teardown contract).
  pool.WaitIdle();

  size_t cached = 0;
  for (size_t s = 0; s < set.num_shards(); ++s) {
    cached += set.cached_shard(s).trie_snapshot()->num_cached();
  }
  EXPECT_GT(cached, 0u) << "background rebuilds never published a snapshot";
  for (size_t i = 0; i < coverings.size(); ++i) {
    const QueryResult got = set.SelectCoveringCached(coverings[i], req);
    ASSERT_EQ(got.count, want[i].count);
    for (size_t v = 0; v < got.values.size(); ++v) {
      ASSERT_NEAR(got.values[v], want[i].values[v],
                  1e-9 * std::abs(want[i].values[v]) + 1e-6);
    }
  }
}

TEST_F(ConcurrencyStressTest, ConcurrentResetNeverCorruptsCounters) {
  // Reset racing with readers: fields may be sampled mid-reset, but once
  // everything quiesces a final reset + sequential pass must account
  // exactly (no stuck or corrupted counters).
  BlockSet set = BlockSet::Build(*sharded_, BlockSetOptions{{kLevel, {}}});
  set.EnableCache(GeoBlockQC::Options{0.05, 0});
  const AggregateRequest req = Request();
  const auto coverings = CoverAll(set);

  std::atomic<bool> stop{false};
  std::thread resetter([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      set.ResetCacheCounters();
    }
  });
  std::vector<std::thread> readers;
  for (size_t t = 0; t < 2; ++t) {
    readers.emplace_back([&] {
      for (size_t r = 0; r < 8; ++r) {
        for (const auto& covering : coverings) {
          set.SelectCoveringCached(covering, req);
        }
      }
    });
  }
  for (std::thread& t : readers) t.join();
  stop.store(true, std::memory_order_relaxed);
  resetter.join();

  set.ResetCacheCounters();
  for (const auto& covering : coverings) {
    set.SelectCoveringCached(covering, req);
  }
  const CacheCounters last = set.MergedCacheCounters();
  EXPECT_GT(last.probes, 0u);
  EXPECT_EQ(last.probes,
            last.full_hits + last.partial_hits + last.misses);
}

}  // namespace
}  // namespace geoblocks
