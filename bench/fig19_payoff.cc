// Reproduces Figure 19: the payoff point of incremental builds — how many
// filtered GeoBlocks must be built from the sorted base data before the
// upfront cost of sorting *all* data beats building isolated GeoBlocks
// (filter first, then sort only the qualifying tuples).
#include "bench/common.h"

namespace geoblocks::bench {
namespace {

/// Isolated build: filter the raw data, then extract (sort) and build.
double IsolatedBuildMs(const storage::PointTable& raw,
                       const storage::Filter& filter, int level) {
  return bench_util::TimeMs([&] {
    storage::PointTable filtered(raw.schema());
    std::vector<double> values(raw.num_columns());
    for (size_t i = 0; i < raw.num_rows(); ++i) {
      bool keep = true;
      for (const storage::Predicate& p : filter.predicates()) {
        if (!p.Matches(raw.Value(i, p.column))) {
          keep = false;
          break;
        }
      }
      if (!keep) continue;
      for (size_t c = 0; c < values.size(); ++c) values[c] = raw.Value(i, c);
      filtered.AddRow(raw.Location(i), values);
    }
    storage::ExtractOptions options;
    options.clean_bounds = workload::NycBounds();
    options.collect_cells_level = level;
    const auto data = storage::SortedDataset::Extract(filtered, options);
    const core::GeoBlock block =
        core::GeoBlock::Build(data, {level, {}});
    if (block.num_cells() == 0) std::printf("(empty)\n");
  });
}

void Run() {
  bench_util::Banner("Figure 19 — payoff point of incremental builds",
                     "k* = number of filtered builds after which "
                     "sort-once + k incremental builds is cheaper than k "
                     "isolated filter-sort-build pipelines.");
  const storage::PointTable raw = workload::GenTaxi(TaxiPoints());

  struct FilterCase {
    const char* name;
    storage::Filter filter;
  };
  std::vector<FilterCase> cases;
  {
    storage::Filter f;
    f.Add({1, storage::CompareOp::kGe, 4.0});
    cases.push_back({"distance >= 4 (~16%)", f});
  }
  {
    storage::Filter f;
    f.Add({4, storage::CompareOp::kEq, 1.0});
    cases.push_back({"passenger_cnt == 1 (~70%)", f});
  }
  {
    storage::Filter f;
    f.Add({4, storage::CompareOp::kGt, 1.0});
    cases.push_back({"passenger_cnt > 1 (~30%)", f});
  }

  bench_util::TablePrinter table({"filter", "level", "sort-all ms",
                                  "incr ms", "isolated ms", "payoff k*"});
  for (const FilterCase& fc : cases) {
    for (int level = 15; level <= 19; ++level) {
      // Upfront: extract (sort) the full dataset once.
      storage::ExtractOptions options;
      options.clean_bounds = workload::NycBounds();
      options.collect_cells_level = level;
      storage::SortedDataset data;
      const double sort_all_ms = bench_util::TimeMs(
          [&] { data = storage::SortedDataset::Extract(raw, options); });
      // Incremental: one filtered build from the sorted base data.
      const double incr_ms = bench_util::MedianTimeMs(3, [&] {
        const core::GeoBlock block =
            core::GeoBlock::Build(data, {level, fc.filter});
        if (block.num_cells() == 0) std::printf("(empty)\n");
      });
      const double isolated_ms = IsolatedBuildMs(raw, fc.filter, level);
      // Payoff: smallest k with sort_all + k*incr <= k*isolated.
      const double denom = isolated_ms - incr_ms;
      const std::string payoff =
          denom <= 0.0 ? "never"
                       : std::to_string(static_cast<long>(
                             std::ceil(sort_all_ms / denom)));
      table.AddRow({fc.name, std::to_string(level),
                    bench_util::TablePrinter::Fmt(sort_all_ms),
                    bench_util::TablePrinter::Fmt(incr_ms),
                    bench_util::TablePrinter::Fmt(isolated_ms), payoff});
    }
  }
  table.Print();
  PaperNote(
      "the more selective the filter, the later the payoff (sorting few "
      "qualifying tuples is cheap): distance >= 4 amortizes around 5-20 "
      "builds, passenger_cnt == 1 almost immediately, passenger_cnt > 1 "
      "in between; switching filters is always faster with incremental "
      "builds once the base data is sorted.");
}

}  // namespace
}  // namespace geoblocks::bench

int main() { geoblocks::bench::Run(); }
