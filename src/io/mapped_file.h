#pragma once

/// \file mapped_file.h
/// Read-only memory mapping for the lazy GBST open path. A MappedFile
/// mmaps a whole container file once; BlockSet::OpenMapped validates the
/// manifest eagerly against the mapping and leaves every shard payload
/// untouched until a query first routes to it — the page cache, not the
/// heap, holds cold shards. The mapping is PROT_READ/MAP_PRIVATE and the
/// fd stays open so the chaos path can re-read the same bytes through
/// util::IoShim::Pread (fault injection cannot interpose on a load
/// instruction; see docs/FORMAT.md §Lazy loading for the SIGBUS caveat
/// the pread path exists to sidestep in tests).
///
/// ViewStream is the zero-copy companion: an std::istream over a borrowed
/// byte range, so the existing stream-based deserializers (GeoBlock::
/// ReadFrom and friends) parse straight out of the mapping without an
/// intermediate std::string copy.

#include <cstddef>
#include <istream>
#include <streambuf>
#include <string>
#include <string_view>

namespace geoblocks::io {

/// RAII read-only mmap of a regular file. Movable, not copyable; unmaps
/// and closes on destruction. The mapped size is fixed at Open time — a
/// concurrent truncate makes loads past the new EOF raise SIGBUS, which
/// is the documented risk the manifest-checksummed size bounds and the
/// shim-backed pread path exist to contain.
class MappedFile {
 public:
  MappedFile() = default;
  ~MappedFile();

  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  /// Opens and maps `path` read-only.
  /// @throws std::runtime_error on open/stat/mmap failure.
  static MappedFile Open(const std::string& path);

  const char* data() const { return static_cast<const char*>(addr_); }
  size_t size() const { return size_; }
  /// The still-open descriptor, for the IoShim::Pread chaos read path.
  int fd() const { return fd_; }
  bool mapped() const { return addr_ != nullptr; }

  /// @return The bytes [offset, offset+count) as a view into the mapping.
  /// @throws std::out_of_range when the range exceeds the mapped size.
  std::string_view View(size_t offset, size_t count) const;

 private:
  void Reset() noexcept;

  void* addr_ = nullptr;
  size_t size_ = 0;
  int fd_ = -1;
};

/// A read-only std::streambuf over a borrowed byte range. The range must
/// outlive the buffer; nothing is copied.
class ViewStreambuf : public std::streambuf {
 public:
  ViewStreambuf(const char* data, size_t size) {
    // setg wants char*; the buffer is never written (no setp, overflow
    // stays default-fail), so the const_cast is contained here.
    char* p = const_cast<char*>(data);
    setg(p, p, p + size);
  }

 protected:
  // Support tellg/seekg so parsers can measure consumed bytes.
  pos_type seekoff(off_type off, std::ios_base::seekdir dir,
                   std::ios_base::openmode which) override;
  pos_type seekpos(pos_type pos, std::ios_base::openmode which) override;
};

/// std::istream over a borrowed byte range (zero copy). The private-base
/// ordering guarantees the streambuf outlives istream construction.
class ViewStream : private ViewStreambuf, public std::istream {
 public:
  ViewStream(const char* data, size_t size)
      : ViewStreambuf(data, size), std::istream(this) {}
  explicit ViewStream(std::string_view bytes)
      : ViewStream(bytes.data(), bytes.size()) {}
};

}  // namespace geoblocks::io
