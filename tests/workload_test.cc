#include <gtest/gtest.h>

#include <random>

#include "workload/datagen.h"
#include "workload/exact.h"
#include "workload/polygen.h"
#include "workload/workload.h"

namespace geoblocks::workload {
namespace {

TEST(DataGenTest, TaxiShape) {
  const storage::PointTable t = GenTaxi(10000, 1);
  EXPECT_EQ(t.num_rows(), 10000u);
  EXPECT_EQ(t.num_columns(), 7u);
  EXPECT_EQ(t.schema().ColumnIndex("fare_amount"), 0);
  EXPECT_EQ(t.schema().ColumnIndex("passenger_count"), 4);
  // All points within (or clamped to) the NYC bounds.
  const geo::Rect bounds = NycBounds();
  for (size_t i = 0; i < t.num_rows(); i += 97) {
    ASSERT_TRUE(bounds.Contains(t.Location(i)));
  }
}

TEST(DataGenTest, TaxiFilterSelectivities) {
  const storage::PointTable t = GenTaxi(50000, 2);
  size_t long_trips = 0;
  size_t solo = 0;
  size_t shared = 0;
  for (size_t i = 0; i < t.num_rows(); ++i) {
    if (t.Value(i, 1) >= 4.0) ++long_trips;
    if (t.Value(i, 4) == 1.0) ++solo;
    if (t.Value(i, 4) > 1.0) ++shared;
  }
  const double n = static_cast<double>(t.num_rows());
  // Paper Section 4.4: ~16%, ~70%, ~30%.
  EXPECT_NEAR(long_trips / n, 0.16, 0.05);
  EXPECT_NEAR(solo / n, 0.70, 0.04);
  EXPECT_NEAR(shared / n, 0.30, 0.04);
}

TEST(DataGenTest, TaxiAttributesAreConsistent) {
  const storage::PointTable t = GenTaxi(5000, 3);
  for (size_t i = 0; i < t.num_rows(); ++i) {
    const double fare = t.Value(i, 0);
    const double tip = t.Value(i, 2);
    const double tip_rate = t.Value(i, 3);
    const double total = t.Value(i, 6);
    ASSERT_GE(fare, 2.5);
    ASSERT_NEAR(tip, fare * tip_rate, 1e-9);
    ASSERT_NEAR(total, fare + tip, 1e-9);
    ASSERT_GE(t.Value(i, 4), 1.0);
    ASSERT_LE(t.Value(i, 4), 6.0);
  }
}

TEST(DataGenTest, Deterministic) {
  const storage::PointTable a = GenTaxi(1000, 9);
  const storage::PointTable b = GenTaxi(1000, 9);
  for (size_t i = 0; i < a.num_rows(); ++i) {
    ASSERT_EQ(a.Location(i), b.Location(i));
    ASSERT_EQ(a.Value(i, 0), b.Value(i, 0));
  }
  const storage::PointTable c = GenTaxi(1000, 10);
  bool any_different = false;
  for (size_t i = 0; i < a.num_rows() && !any_different; ++i) {
    any_different = a.Location(i) != c.Location(i);
  }
  EXPECT_TRUE(any_different);
}

TEST(DataGenTest, TaxiIsSpatiallySkewed) {
  // Manhattan-ish core should hold far more than its share of area.
  const storage::PointTable t = GenTaxi(20000, 4);
  const geo::Rect core{{-74.03, 40.70}, {-73.93, 40.82}};
  size_t inside = 0;
  for (size_t i = 0; i < t.num_rows(); ++i) {
    if (core.Contains(t.Location(i))) ++inside;
  }
  const double frac_points =
      static_cast<double>(inside) / static_cast<double>(t.num_rows());
  const double frac_area = core.Area() / NycBounds().Area();
  EXPECT_GT(frac_points, 5.0 * frac_area);
}

TEST(DataGenTest, TweetsAndOsm) {
  const storage::PointTable tweets = GenTweets(5000, 5);
  EXPECT_EQ(tweets.num_columns(), 4u);
  for (size_t i = 0; i < tweets.num_rows(); i += 61) {
    ASSERT_TRUE(UsBounds().Contains(tweets.Location(i)));
  }
  const storage::PointTable osm = GenOsm(5000, 6);
  EXPECT_EQ(osm.num_columns(), 4u);
  for (size_t i = 0; i < osm.num_rows(); i += 61) {
    ASSERT_TRUE(AmericasBounds().Contains(osm.Location(i)));
  }
}

TEST(PolygenTest, NeighborhoodsAreSimpleAndPlaced) {
  const storage::PointTable t = GenTaxi(5000, 7);
  const auto polys = Neighborhoods(t, 50, 8);
  ASSERT_EQ(polys.size(), 50u);
  const geo::Rect wide = NycBounds().Expanded(0.05);
  for (const geo::Polygon& p : polys) {
    ASSERT_GE(p.num_vertices(), 4u);
    ASSERT_LE(p.num_vertices(), 9u);
    ASSERT_GT(p.Area(), 0.0);
    ASSERT_TRUE(wide.Contains(p.Bounds()));
  }
}

TEST(PolygenTest, TilingCoversBounds) {
  const geo::Rect bounds = UsBounds();
  const auto tiles = TilingPolygons(bounds, 5, 10, 0.3, 9);
  ASSERT_EQ(tiles.size(), 50u);
  double total_area = 0.0;
  for (const geo::Polygon& p : tiles) total_area += p.Area();
  // The tiles partition the bounds: areas sum to the bounds' area.
  EXPECT_NEAR(total_area, bounds.Area(), 1e-6 * bounds.Area());
  // Random sample points are covered by exactly one tile (interior).
  std::mt19937_64 rng(10);
  std::uniform_real_distribution<double> ux(bounds.min.x, bounds.max.x);
  std::uniform_real_distribution<double> uy(bounds.min.y, bounds.max.y);
  for (int t = 0; t < 200; ++t) {
    const geo::Point p{ux(rng), uy(rng)};
    int covering = 0;
    for (const geo::Polygon& tile : tiles) {
      if (tile.Contains(p)) ++covering;
    }
    ASSERT_GE(covering, 1);
    ASSERT_LE(covering, 2);  // 2 only exactly on a shared border
  }
}

TEST(PolygenTest, RandomRectangles) {
  const auto rects = RandomRectangles(UsBounds(), 51, 11);
  ASSERT_EQ(rects.size(), 51u);
  for (const geo::Polygon& p : rects) {
    ASSERT_EQ(p.num_vertices(), 4u);
    ASSERT_TRUE(UsBounds().Contains(p.Bounds()));
  }
}

TEST(PolygenTest, SelectivityPolygonHitsTarget) {
  const storage::PointTable t = GenTaxi(30000, 12);
  storage::ExtractOptions options;
  options.clean_bounds = NycBounds();
  const auto data = storage::SortedDataset::Extract(t, options);
  for (const double target : {0.01, 0.10, 0.50, 0.90}) {
    double achieved = 0.0;
    const geo::Polygon poly = SelectivityPolygon(data, target, &achieved);
    ASSERT_FALSE(poly.IsEmpty());
    EXPECT_NEAR(achieved, target, 0.03) << "target " << target;
    // Cross-check with the exact count.
    const uint64_t exact = ExactCount(data, poly);
    EXPECT_NEAR(static_cast<double>(exact) /
                    static_cast<double>(data.num_rows()),
                target, 0.05);
  }
}

TEST(WorkloadTest, BaseAndSkewed) {
  const storage::PointTable t = GenTaxi(2000, 13);
  const auto polys = Neighborhoods(t, 100, 14);
  const Workload base = BaseWorkload(polys);
  EXPECT_EQ(base.size(), 100u);
  const Workload skewed = SkewedWorkload(polys, 0.1, 15);
  EXPECT_EQ(skewed.size(), 10u);
  // Skewed queries point into the polygon vector.
  for (const geo::Polygon* q : skewed.queries) {
    ASSERT_GE(q, polys.data());
    ASSERT_LT(q, polys.data() + polys.size());
  }
  // Deterministic selection.
  const Workload skewed2 = SkewedWorkload(polys, 0.1, 15);
  EXPECT_EQ(skewed.queries, skewed2.queries);
}

TEST(WorkloadTest, Combined) {
  const storage::PointTable t = GenTaxi(2000, 16);
  const auto polys = Neighborhoods(t, 20, 17);
  const Workload base = BaseWorkload(polys);
  const Workload skewed = SkewedWorkload(polys, 0.1, 18);
  const Workload combined = CombinedWorkload(base, 1, skewed, 4);
  EXPECT_EQ(combined.size(), base.size() + 4 * skewed.size());
}

TEST(ExactCountTest, MatchesBruteForce) {
  const storage::PointTable t = GenTaxi(8000, 19);
  storage::ExtractOptions options;
  options.clean_bounds = NycBounds();
  const auto data = storage::SortedDataset::Extract(t, options);
  const auto polys = Neighborhoods(t, 10, 20);
  for (const geo::Polygon& poly : polys) {
    uint64_t brute = 0;
    for (size_t row = 0; row < data.num_rows(); ++row) {
      const geo::Point p = data.projection().ToUnit(data.Location(row));
      if (data.projection().ToUnit(poly).Contains(p)) ++brute;
    }
    ASSERT_EQ(ExactCount(data, poly), brute);
  }
}

TEST(ExactCountTest, RelativeError) {
  EXPECT_EQ(RelativeError(110, 100), 0.1);
  EXPECT_EQ(RelativeError(90, 100), 0.1);
  EXPECT_EQ(RelativeError(0, 0), 0.0);
  EXPECT_EQ(RelativeError(5, 0), 5.0);
}

}  // namespace
}  // namespace geoblocks::workload
