// Micro-benchmarks for the vectorized scan kernels: the batched SoA loops
// the refinement scans on the hot query path compile down to — predicate
// filter masks, per-column aggregate accumulation (plain and masked),
// point-in-polygon counting, cell-count summation, and the sorted-key
// probes. Each kernel runs at the scalar reference level and at the
// runtime-dispatched level, results are compared bit for bit, and the
// speedups land in BENCH_kernels.json.
//
// Output contract (grepped by CI):
//   "parity mismatches: N"  — must be 0; any N > 0 is a correctness bug.
//   "kernel speedup gate: PASS|SKIP (scalar dispatch)|FAIL" — the ≥2×
//   SIMD-vs-scalar requirement on the refinement filter scan
//   (count_polygon_hits) and aggregate accumulation (aggregate_column);
//   SKIP when the build or machine dispatches scalar (GEOBLOCKS_NO_SIMD,
//   non-x86, or no SSE2), where no speedup can exist.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "core/scan_kernels.h"
#include "util/thread_pool.h"

namespace geoblocks::bench {
namespace {

using core::kernels::DispatchLevel;
using core::kernels::KernelTable;

struct KernelResult {
  std::string name;
  double scalar_ms = 0.0;
  double simd_ms = 0.0;
  bool parity = true;

  double Speedup() const { return simd_ms > 0.0 ? scalar_ms / simd_ms : 0.0; }
};

/// Best-of-`reps` wall time of `fn()` in milliseconds (minimum damps
/// scheduler noise; the kernels are deterministic, so min is meaningful).
template <typename Fn>
double BestMs(int reps, const Fn& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    bench_util::Timer timer;
    fn();
    best = std::min(best, timer.ElapsedMs());
  }
  return best;
}

void Run() {
  bench_util::Banner(
      "Micro — vectorized scan kernels",
      "scalar reference vs runtime-dispatched SIMD for the hot-path scan "
      "kernels; bit-identical parity required, speedups recorded.");

  const DispatchLevel active = core::kernels::ActiveDispatchLevel();
  const KernelTable& scalar = core::kernels::KernelsAt(DispatchLevel::kScalar);
  const KernelTable& simd = core::kernels::Kernels();

  const size_t n = std::max<size_t>(1 << 16, bench_util::Scaled(4'000'000));
  const int reps = 7;
  std::mt19937_64 rng(42);

  // Column data: plausible taxi-like values, nothing degenerate.
  std::vector<double> col_a(n), col_b(n);
  for (size_t i = 0; i < n; ++i) {
    col_a[i] = static_cast<double>(rng() % 100000) / 100.0;
    col_b[i] = static_cast<double>(rng() % 1000) / 10.0;
  }
  std::vector<uint8_t> mask(n), mask_ref(n);
  std::vector<uint32_t> counts(n);
  for (size_t i = 0; i < n; ++i) counts[i] = static_cast<uint32_t>(rng() % 64);
  std::vector<uint64_t> sorted_keys(n);
  for (size_t i = 0; i < n; ++i) sorted_keys[i] = rng();
  std::sort(sorted_keys.begin(), sorted_keys.end());

  // Points + a real neighborhood polygon for the refinement filter scan.
  const TaxiEnv env = TaxiEnv::Create(std::min<size_t>(TaxiPoints(), n), 16);
  const auto xs = env.data.xs();
  const auto ys = env.data.ys();
  const core::kernels::UnitTransform transform =
      core::kernels::UnitTransform::From(env.data.projection());
  const core::kernels::PreparedPolygon polygon =
      core::kernels::PreparedPolygon::From(env.neighborhoods[3]);

  std::vector<KernelResult> results;
  uint64_t parity_mismatches = 0;

  // -- filter_mask: two-predicate conjunction over two columns.
  {
    const storage::Predicate preds[2] = {
        {0, storage::CompareOp::kGe, 250.0},
        {1, storage::CompareOp::kLt, 80.0},
    };
    const double* cols[2] = {col_a.data(), col_b.data()};
    KernelResult r;
    r.name = "filter_mask";
    r.scalar_ms = BestMs(
        reps, [&] { scalar.filter_mask(preds, 2, cols, n, mask_ref.data()); });
    r.simd_ms =
        BestMs(reps, [&] { simd.filter_mask(preds, 2, cols, n, mask.data()); });
    r.parity = std::memcmp(mask.data(), mask_ref.data(), n) == 0;
    results.push_back(r);
  }

  // -- aggregate_column: min/max/striped-sum over one column.
  {
    core::ColumnAggregate want, got;
    KernelResult r;
    r.name = "aggregate_column";
    r.scalar_ms = BestMs(reps, [&] {
      want = core::ColumnAggregate{};
      scalar.aggregate_column(col_a.data(), n, &want);
    });
    r.simd_ms = BestMs(reps, [&] {
      got = core::ColumnAggregate{};
      simd.aggregate_column(col_a.data(), n, &got);
    });
    r.parity = want == got;
    results.push_back(r);
  }

  // -- aggregate_column_masked: same fold restricted to the filter's mask.
  {
    core::ColumnAggregate want, got;
    KernelResult r;
    r.name = "aggregate_column_masked";
    r.scalar_ms = BestMs(reps, [&] {
      want = core::ColumnAggregate{};
      scalar.aggregate_column_masked(col_b.data(), mask_ref.data(), n, &want);
    });
    r.simd_ms = BestMs(reps, [&] {
      got = core::ColumnAggregate{};
      simd.aggregate_column_masked(col_b.data(), mask_ref.data(), n, &got);
    });
    r.parity = want == got;
    results.push_back(r);
  }

  // -- count_polygon_hits: the residual-cell refinement scan (PIP filter).
  {
    uint64_t want = 0, got = 0;
    KernelResult r;
    r.name = "count_polygon_hits";
    r.scalar_ms = BestMs(reps, [&] {
      want = scalar.count_polygon_hits(xs.data(), ys.data(), xs.size(),
                                       transform, polygon);
    });
    r.simd_ms = BestMs(reps, [&] {
      got = simd.count_polygon_hits(xs.data(), ys.data(), xs.size(),
                                    transform, polygon);
    });
    r.parity = want == got;
    results.push_back(r);
  }

  // -- sum_counts: exact u64 sum of the COUNT range scan.
  {
    uint64_t want = 0, got = 0;
    KernelResult r;
    r.name = "sum_counts";
    r.scalar_ms =
        BestMs(reps, [&] { want = scalar.sum_counts(counts.data(), n); });
    r.simd_ms = BestMs(reps, [&] { got = simd.sum_counts(counts.data(), n); });
    r.parity = want == got;
    results.push_back(r);
  }

  // -- lower_bound_u64: branchless sorted-key probes (batch of lookups).
  {
    std::vector<uint64_t> probes(1 << 14);
    for (uint64_t& p : probes) p = rng();
    size_t want = 0, got = 0;
    KernelResult r;
    r.name = "lower_bound_u64";
    r.scalar_ms = BestMs(reps, [&] {
      want = 0;
      for (const uint64_t p : probes) {
        want += scalar.lower_bound_u64(sorted_keys.data(), n, p);
      }
    });
    r.simd_ms = BestMs(reps, [&] {
      got = 0;
      for (const uint64_t p : probes) {
        got += simd.lower_bound_u64(sorted_keys.data(), n, p);
      }
    });
    r.parity = want == got;
    results.push_back(r);
  }

  bench_util::TablePrinter table(
      {"kernel", "scalar ms", "dispatched ms", "speedup", "parity"});
  for (const KernelResult& r : results) {
    if (!r.parity) ++parity_mismatches;
    table.AddRow({r.name, bench_util::TablePrinter::Fmt(r.scalar_ms, 3),
                  bench_util::TablePrinter::Fmt(r.simd_ms, 3),
                  bench_util::TablePrinter::Fmt(r.Speedup(), 2),
                  r.parity ? "ok" : "MISMATCH"});
  }
  table.Print();

  std::printf("kernel dispatch: %s, pool type: %s, elements: %zu\n",
              core::kernels::ToString(active), util::ThreadPool::pool_type(),
              n);
  std::printf("parity mismatches: %llu\n",
              static_cast<unsigned long long>(parity_mismatches));

  // The ≥2× gate on the two kernels the acceptance criteria name. Scalar
  // dispatch (GEOBLOCKS_NO_SIMD or no SIMD hardware) times the same code
  // against itself, so the gate is skipped rather than failed there.
  const char* gate = "PASS";
  if (active == DispatchLevel::kScalar) {
    gate = "SKIP (scalar dispatch)";
  } else {
    double pip = 0.0, agg = 0.0;
    for (const KernelResult& r : results) {
      if (r.name == "count_polygon_hits") pip = r.Speedup();
      if (r.name == "aggregate_column") agg = r.Speedup();
    }
    if (pip < 2.0 || agg < 2.0) gate = "FAIL";
  }
  std::printf("kernel speedup gate: %s\n", gate);

  std::ofstream json("BENCH_kernels.json");
  json << "{\n"
       << "  \"bench\": \"micro_kernels\",\n"
       << "  \"hardware_concurrency\": "
       << std::thread::hardware_concurrency() << ",\n"
       << "  \"kernel_dispatch\": \"" << core::kernels::ToString(active)
       << "\",\n"
       << "  \"pool_type\": \"" << util::ThreadPool::pool_type() << "\",\n"
       << "  \"elements\": " << n << ",\n"
       << "  \"parity_mismatches\": " << parity_mismatches << ",\n"
       << "  \"gate\": \"" << gate << "\",\n"
       << "  \"results\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const KernelResult& r = results[i];
    json << "    {\"kernel\": \"" << r.name
         << "\", \"scalar_ms\": " << r.scalar_ms
         << ", \"dispatched_ms\": " << r.simd_ms
         << ", \"speedup\": " << r.Speedup() << "}"
         << (i + 1 < results.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::printf("wrote BENCH_kernels.json\n");

  PaperNote(
      "the paper's refinement costs (Figures 12-14) assume per-row scalar "
      "scans; batching them into dispatch-selected SoA kernels keeps every "
      "answer bit-identical while cutting the dominant scan constants.");
}

}  // namespace
}  // namespace geoblocks::bench

int main() {
  geoblocks::bench::Run();
  return 0;
}
