#include "workload/polygen.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <random>

namespace geoblocks::workload {

std::vector<geo::Polygon> Neighborhoods(const storage::PointTable& data,
                                        size_t count, uint64_t seed,
                                        double min_radius_deg,
                                        double max_radius_deg) {
  std::vector<geo::Polygon> polygons;
  if (data.num_rows() == 0 || count == 0) return polygons;
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<size_t> pick_row(0, data.num_rows() - 1);
  std::uniform_real_distribution<double> uni(0.0, 1.0);
  std::uniform_int_distribution<int> pick_vertices(4, 9);

  polygons.reserve(count);
  for (size_t k = 0; k < count; ++k) {
    const geo::Point center = data.Location(pick_row(rng));
    const double radius =
        min_radius_deg + (max_radius_deg - min_radius_deg) * uni(rng);
    const int vertices = pick_vertices(rng);
    // Star-shaped ring: sorted angles with jittered radii. Guaranteed
    // simple (non-self-intersecting).
    std::vector<double> angles(vertices);
    for (double& a : angles) a = 2.0 * std::numbers::pi * uni(rng);
    std::sort(angles.begin(), angles.end());
    // Avoid near-duplicate angles which would create degenerate edges.
    bool degenerate = false;
    for (int i = 1; i < vertices; ++i) {
      if (angles[i] - angles[i - 1] < 0.05) degenerate = true;
    }
    if (degenerate) {
      for (int i = 0; i < vertices; ++i) {
        angles[i] = 2.0 * std::numbers::pi * (i + 0.5 * uni(rng)) / vertices;
      }
    }
    geo::Ring ring;
    ring.reserve(vertices);
    for (int i = 0; i < vertices; ++i) {
      const double r = radius * (0.55 + 0.45 * uni(rng));
      // Squash latitude so shapes look isotropic on the ground.
      ring.push_back({center.x + r * std::cos(angles[i]),
                      center.y + 0.75 * r * std::sin(angles[i])});
    }
    polygons.emplace_back(std::move(ring));
  }
  return polygons;
}

std::vector<geo::Polygon> TilingPolygons(const geo::Rect& bounds, int rows,
                                         int cols, double jitter_frac,
                                         uint64_t seed) {
  // Jittered grid corners shared by adjacent tiles, so the polygons tile
  // the plane without gaps or overlaps (like states sharing borders).
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> uni(-1.0, 1.0);
  const double cell_w = bounds.Width() / cols;
  const double cell_h = bounds.Height() / rows;

  std::vector<std::vector<geo::Point>> corners(
      rows + 1, std::vector<geo::Point>(cols + 1));
  for (int r = 0; r <= rows; ++r) {
    for (int c = 0; c <= cols; ++c) {
      double x = bounds.min.x + c * cell_w;
      double y = bounds.min.y + r * cell_h;
      // Border corners stay fixed so the tiling exactly covers the bounds.
      if (c != 0 && c != cols) x += jitter_frac * cell_w * uni(rng);
      if (r != 0 && r != rows) y += jitter_frac * cell_h * uni(rng);
      corners[r][c] = {x, y};
    }
  }

  std::vector<geo::Polygon> polygons;
  polygons.reserve(static_cast<size_t>(rows) * cols);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      polygons.emplace_back(geo::Ring{corners[r][c], corners[r][c + 1],
                                      corners[r + 1][c + 1],
                                      corners[r + 1][c]});
    }
  }
  return polygons;
}

std::vector<geo::Polygon> RandomRectangles(const geo::Rect& bounds,
                                           size_t count, uint64_t seed,
                                           double min_side_frac,
                                           double max_side_frac) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> uni(0.0, 1.0);
  std::vector<geo::Polygon> polygons;
  polygons.reserve(count);
  for (size_t k = 0; k < count; ++k) {
    const double w =
        (min_side_frac + (max_side_frac - min_side_frac) * uni(rng)) *
        bounds.Width();
    const double h =
        (min_side_frac + (max_side_frac - min_side_frac) * uni(rng)) *
        bounds.Height();
    const double x = bounds.min.x + uni(rng) * (bounds.Width() - w);
    const double y = bounds.min.y + uni(rng) * (bounds.Height() - h);
    polygons.push_back(
        geo::Polygon::FromRect(geo::Rect{{x, y}, {x + w, y + h}}));
  }
  return polygons;
}

geo::Polygon SelectivityPolygon(const storage::SortedDataset& data,
                                double fraction, double* achieved) {
  const size_t n = data.num_rows();
  if (n == 0) return geo::Polygon();
  // Data centroid as the query center.
  double cx = 0.0;
  double cy = 0.0;
  for (size_t i = 0; i < n; ++i) {
    cx += data.xs()[i];
    cy += data.ys()[i];
  }
  cx /= static_cast<double>(n);
  cy /= static_cast<double>(n);

  // Sample points to estimate the containment fraction of a circle.
  const size_t stride = std::max<size_t>(1, n / 50000);
  std::vector<geo::Point> sample;
  for (size_t i = 0; i < n; i += stride) {
    sample.push_back(data.Location(i));
  }
  const auto fraction_within = [&](double radius) {
    size_t inside = 0;
    for (const geo::Point& p : sample) {
      const double dx = (p.x - cx);
      const double dy = (p.y - cy) / 0.75;  // same squash as the polygon
      if (dx * dx + dy * dy <= radius * radius) ++inside;
    }
    return static_cast<double>(inside) / static_cast<double>(sample.size());
  };

  // Bisect the radius; an oversized upper bound covers everything.
  double lo = 0.0;
  double hi = 10.0 * std::max(data.projection().domain().Width(), 1.0);
  for (int iter = 0; iter < 60; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (fraction_within(mid) < fraction) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  const double radius = hi;
  if (achieved != nullptr) *achieved = fraction_within(radius);

  geo::Ring ring;
  constexpr int kVertices = 32;
  for (int i = 0; i < kVertices; ++i) {
    const double a = 2.0 * std::numbers::pi * i / kVertices;
    ring.push_back(
        {cx + radius * std::cos(a), cy + 0.75 * radius * std::sin(a)});
  }
  return geo::Polygon(std::move(ring));
}

}  // namespace geoblocks::workload
