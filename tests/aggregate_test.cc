#include <gtest/gtest.h>

#include <random>

#include "core/aggregate.h"

namespace geoblocks::core {
namespace {

TEST(ColumnAggregateTest, AddAndMerge) {
  ColumnAggregate a;
  a.Add(3.0);
  a.Add(-1.0);
  a.Add(7.0);
  EXPECT_EQ(a.min, -1.0);
  EXPECT_EQ(a.max, 7.0);
  EXPECT_EQ(a.sum, 9.0);

  ColumnAggregate b;
  b.Add(10.0);
  a.Merge(b);
  EXPECT_EQ(a.min, -1.0);
  EXPECT_EQ(a.max, 10.0);
  EXPECT_EQ(a.sum, 19.0);
}

TEST(ColumnAggregateTest, EmptyIsMergeIdentity) {
  ColumnAggregate a;
  a.Add(5.0);
  ColumnAggregate b = a;
  b.Merge(ColumnAggregate{});
  EXPECT_EQ(a, b);
}

TEST(AggregateVectorTest, Merge) {
  AggregateVector a(2);
  a.count = 3;
  a.columns[0].Add(1.0);
  a.columns[1].Add(2.0);
  AggregateVector b(2);
  b.count = 2;
  b.columns[0].Add(-5.0);
  b.columns[1].Add(8.0);
  a.Merge(b);
  EXPECT_EQ(a.count, 5u);
  EXPECT_EQ(a.columns[0].min, -5.0);
  EXPECT_EQ(a.columns[1].max, 8.0);
}

TEST(AggregateRequestTest, FirstN) {
  const AggregateRequest req = AggregateRequest::FirstN(4, 7);
  EXPECT_EQ(req.size(), 4u);
  EXPECT_EQ(req.specs()[0].fn, AggFn::kCount);
  const AggregateRequest one = AggregateRequest::FirstN(1, 7);
  EXPECT_EQ(one.size(), 1u);
  EXPECT_EQ(AggregateRequest::FirstN(0, 7).size(), 0u);
}

TEST(AccumulatorTest, RowsMatchPrecomputedAggregates) {
  // Folding rows one by one must equal folding their pre-computed
  // aggregate — the core invariant that makes GeoBlocks exact on covered
  // cells.
  std::mt19937_64 rng(1);
  std::uniform_real_distribution<double> uni(-100.0, 100.0);
  const size_t rows = 500;
  const size_t cols = 3;
  std::vector<std::vector<double>> values(rows, std::vector<double>(cols));
  std::vector<ColumnAggregate> aggs(cols);
  for (auto& row : values) {
    for (size_t c = 0; c < cols; ++c) {
      row[c] = uni(rng);
      aggs[c].Add(row[c]);
    }
  }

  AggregateRequest req;
  req.Add(AggFn::kCount);
  req.Add(AggFn::kSum, 0);
  req.Add(AggFn::kMin, 1);
  req.Add(AggFn::kMax, 2);
  req.Add(AggFn::kAvg, 0);

  Accumulator by_rows(&req);
  for (const auto& row : values) {
    by_rows.AddRow([&](int c) { return row[c]; });
  }
  Accumulator by_agg(&req);
  by_agg.AddAggregate(rows, aggs.data());

  const QueryResult a = by_rows.Finish();
  const QueryResult b = by_agg.Finish();
  ASSERT_EQ(a.count, b.count);
  ASSERT_EQ(a.values.size(), b.values.size());
  for (size_t i = 0; i < a.values.size(); ++i) {
    EXPECT_NEAR(a.values[i], b.values[i], 1e-9 * std::abs(a.values[i]) + 1e-9)
        << "spec " << i;
  }
}

TEST(AccumulatorTest, CountSpec) {
  AggregateRequest req;
  req.Add(AggFn::kCount);
  Accumulator acc(&req);
  ColumnAggregate col;
  col.Add(1.0);
  acc.AddAggregate(7, &col);
  acc.AddRow([](int) { return 0.0; });
  const QueryResult r = acc.Finish();
  EXPECT_EQ(r.count, 8u);
  EXPECT_EQ(r.values[0], 8.0);
}

TEST(AccumulatorTest, AvgOverZeroRows) {
  AggregateRequest req;
  req.Add(AggFn::kAvg, 0);
  Accumulator acc(&req);
  const QueryResult r = acc.Finish();
  EXPECT_EQ(r.count, 0u);
  EXPECT_EQ(r.values[0], 0.0);
}

TEST(AccumulatorTest, MinMaxInitialValues) {
  AggregateRequest req;
  req.Add(AggFn::kMin, 0);
  req.Add(AggFn::kMax, 0);
  Accumulator acc(&req);
  acc.AddRow([](int) { return 42.0; });
  const QueryResult r = acc.Finish();
  EXPECT_EQ(r.values[0], 42.0);
  EXPECT_EQ(r.values[1], 42.0);
}

TEST(AccumulatorTest, MergeOrderIndependent) {
  // (a ⊕ b) == (b ⊕ a) for the whole request.
  AggregateRequest req;
  req.Add(AggFn::kCount);
  req.Add(AggFn::kSum, 0);
  req.Add(AggFn::kMin, 0);
  req.Add(AggFn::kMax, 0);

  ColumnAggregate x;
  x.Add(1.0);
  x.Add(4.0);
  ColumnAggregate y;
  y.Add(-2.0);

  Accumulator ab(&req);
  ab.AddAggregate(2, &x);
  ab.AddAggregate(1, &y);
  Accumulator ba(&req);
  ba.AddAggregate(1, &y);
  ba.AddAggregate(2, &x);
  EXPECT_EQ(ab.Finish().values, ba.Finish().values);
}

TEST(ToStringTest, AggFnNames) {
  EXPECT_EQ(ToString(AggFn::kCount), "count");
  EXPECT_EQ(ToString(AggFn::kSum), "sum");
  EXPECT_EQ(ToString(AggFn::kMin), "min");
  EXPECT_EQ(ToString(AggFn::kMax), "max");
  EXPECT_EQ(ToString(AggFn::kAvg), "avg");
}

}  // namespace
}  // namespace geoblocks::core
