// Multithreaded stress suite for the lock-free cached read path: N reader
// threads hammer mixed SELECT/COUNT workloads against a BlockSet's per-shard
// GeoBlockQC caches while rebuilds publish new trie snapshots underneath
// them. Run under ThreadSanitizer in CI (GEOBLOCKS_TSAN).
//
// The correctness contract being pinned:
//  * For a *frozen* snapshot (no rebuild between queries), concurrent
//    cached SELECTs are bit-identical to a single-threaded pass — the read
//    path has no mode where scheduling can change an answer.
//  * Under concurrent rebuilds, every SELECT still sees exactly one
//    snapshot per shard probe, so counts are exact and values match the
//    uncached answer to last-ulp FP tolerance (cached cells fold
//    pre-merged sums); COUNT bypasses the cache and is always exact.
//  * Counter accounting is exact after quiescing; merged counters are
//    monotone between resets even when sampled mid-flight.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <memory>
#include <random>
#include <thread>
#include <vector>

#include "core/block_set.h"
#include "util/thread_pool.h"
#include "workload/datagen.h"
#include "workload/polygen.h"

namespace geoblocks {
namespace {

using core::AggFn;
using core::AggregateRequest;
using core::BlockSet;
using core::BlockSetOptions;
using core::BlockState;
using core::CacheCounters;
using core::GeoBlock;
using core::GeoBlockQC;
using core::QueryResult;

class ConcurrencyStressTest : public ::testing::Test {
 protected:
  static constexpr int kLevel = 15;
  static constexpr size_t kShards = 4;
  static constexpr size_t kReaders = 4;

  static void SetUpTestSuite() {
    raw_ = new storage::PointTable(workload::GenTaxi(20000, 77));
    storage::ExtractOptions options;
    options.clean_bounds = workload::NycBounds();
    data_ = new storage::SortedDataset(
        storage::SortedDataset::Extract(*raw_, options));
    storage::ShardOptions shard_options;
    shard_options.num_shards = kShards;
    shard_options.align_level = kLevel;
    sharded_ = new storage::ShardedDataset(
        storage::ShardedDataset::Partition(*data_, shard_options));
    polygons_ = new std::vector<geo::Polygon>(
        workload::Neighborhoods(*raw_, 24, 5));
  }
  static void TearDownTestSuite() {
    delete polygons_;
    delete sharded_;
    delete data_;
    delete raw_;
    polygons_ = nullptr;
    sharded_ = nullptr;
    data_ = nullptr;
    raw_ = nullptr;
  }

  static AggregateRequest Request() {
    AggregateRequest req;
    req.Add(AggFn::kCount);
    req.Add(AggFn::kSum, 0);
    req.Add(AggFn::kMin, 1);
    req.Add(AggFn::kMax, 2);
    req.Add(AggFn::kAvg, 3);
    return req;
  }

  static std::vector<std::vector<cell::CellId>> CoverAll(
      const BlockSet& set) {
    std::vector<std::vector<cell::CellId>> coverings;
    for (const geo::Polygon& poly : *polygons_) {
      coverings.push_back(set.Cover(poly));
    }
    return coverings;
  }

  static storage::PointTable* raw_;
  static storage::SortedDataset* data_;
  static storage::ShardedDataset* sharded_;
  static std::vector<geo::Polygon>* polygons_;
};

storage::PointTable* ConcurrencyStressTest::raw_ = nullptr;
storage::SortedDataset* ConcurrencyStressTest::data_ = nullptr;
storage::ShardedDataset* ConcurrencyStressTest::sharded_ = nullptr;
std::vector<geo::Polygon>* ConcurrencyStressTest::polygons_ = nullptr;

TEST_F(ConcurrencyStressTest, FrozenSnapshotIsBitIdenticalAcrossThreads) {
  // Warm the caches deterministically, freeze them (no rebuild interval),
  // and require every concurrent reader to reproduce the single-threaded
  // pass bit for bit — SELECT values compared with ==, not tolerance.
  BlockSet set = BlockSet::Build(*sharded_, BlockSetOptions{{kLevel, {}}});
  set.EnableCache(GeoBlockQC::Options{0.10, /*rebuild_interval=*/0});
  const AggregateRequest req = Request();
  const auto coverings = CoverAll(set);

  for (int round = 0; round < 2; ++round) {
    for (const auto& covering : coverings) {
      set.SelectCoveringCached(covering, req);
    }
    set.RebuildCaches();
  }

  std::vector<QueryResult> want_select;
  std::vector<uint64_t> want_count;
  for (const auto& covering : coverings) {
    want_select.push_back(set.SelectCoveringCached(covering, req));
    want_count.push_back(set.CountCovering(covering));
  }

  constexpr size_t kRounds = 8;
  std::vector<std::vector<QueryResult>> got(kReaders);
  std::vector<std::vector<uint64_t>> got_counts(kReaders);
  std::vector<std::thread> readers;
  for (size_t t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      for (size_t r = 0; r < kRounds; ++r) {
        for (size_t i = 0; i < coverings.size(); ++i) {
          if ((i + r + t) % 3 == 0) {
            got_counts[t].push_back(set.CountCovering(coverings[i]));
          }
          got[t].push_back(set.SelectCoveringCached(coverings[i], req));
        }
      }
    });
  }
  for (std::thread& t : readers) t.join();

  for (size_t t = 0; t < kReaders; ++t) {
    size_t gi = 0;
    size_t ci = 0;
    for (size_t r = 0; r < kRounds; ++r) {
      for (size_t i = 0; i < coverings.size(); ++i) {
        if ((i + r + t) % 3 == 0) {
          ASSERT_EQ(got_counts[t][ci++], want_count[i])
              << "reader " << t << " covering " << i;
        }
        const QueryResult& g = got[t][gi++];
        ASSERT_EQ(g.count, want_select[i].count) << "reader " << t;
        ASSERT_EQ(g.values, want_select[i].values)
            << "reader " << t << " covering " << i
            << ": cached SELECT not bit-identical";
      }
    }
  }
}

TEST_F(ConcurrencyStressTest, MixedWorkloadWithConcurrentRebuilds) {
  // Readers run mixed SELECT/COUNT while a writer thread keeps publishing
  // fresh snapshots and interval-triggered rebuilds fire from the readers
  // themselves. Answers must stay correct throughout: counts exact,
  // values within last-ulp tolerance of the uncached reference.
  BlockSet set = BlockSet::Build(*sharded_, BlockSetOptions{{kLevel, {}}});
  set.EnableCache(GeoBlockQC::Options{0.10, /*rebuild_interval=*/16});
  const AggregateRequest req = Request();
  const auto coverings = CoverAll(set);

  std::vector<QueryResult> want_select;
  std::vector<uint64_t> want_count;
  for (const auto& covering : coverings) {
    want_select.push_back(set.SelectCovering(covering, req));
    want_count.push_back(set.CountCovering(covering));
  }

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> checked{0};
  std::thread rebuilder([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      set.RebuildCaches();
      set.MergedCacheCounters();  // concurrent merged reads must be safe
    }
  });

  constexpr size_t kRounds = 10;
  std::vector<std::thread> readers;
  for (size_t t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      for (size_t r = 0; r < kRounds; ++r) {
        for (size_t i = 0; i < coverings.size(); ++i) {
          if ((i + t) % 2 == 0) {
            const uint64_t count = set.CountCovering(coverings[i]);
            ASSERT_EQ(count, want_count[i]) << "reader " << t;
          }
          const QueryResult got =
              set.SelectCoveringCached(coverings[i], req);
          ASSERT_EQ(got.count, want_select[i].count)
              << "reader " << t << " covering " << i;
          for (size_t v = 0; v < got.values.size(); ++v) {
            ASSERT_NEAR(got.values[v], want_select[i].values[v],
                        1e-9 * std::abs(want_select[i].values[v]) + 1e-6)
                << "reader " << t << " covering " << i << " value " << v;
          }
          checked.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : readers) t.join();
  stop.store(true, std::memory_order_relaxed);
  rebuilder.join();

  EXPECT_EQ(checked.load(), kReaders * kRounds * coverings.size());
  // Quiesced: the counter identity must hold exactly.
  const CacheCounters after = set.MergedCacheCounters();
  EXPECT_EQ(after.probes,
            after.full_hits + after.partial_hits + after.misses);
}

TEST_F(ConcurrencyStressTest, CounterAccountingExactAfterQuiescing) {
  // (kReaders + 1) identical passes over cold, frozen tries: every probe
  // is a miss and the relaxed counters must add up exactly — the lock-free
  // plane loses no increment.
  BlockSet set = BlockSet::Build(*sharded_, BlockSetOptions{{kLevel, {}}});
  set.EnableCache(GeoBlockQC::Options{0.05, 0});
  const AggregateRequest req = Request();
  const auto coverings = CoverAll(set);

  for (const auto& covering : coverings) {
    set.SelectCoveringCached(covering, req);
  }
  const CacheCounters base = set.MergedCacheCounters();
  ASSERT_GT(base.probes, 0u);
  ASSERT_EQ(base.probes, base.misses);

  std::vector<std::thread> readers;
  for (size_t t = 0; t < kReaders; ++t) {
    readers.emplace_back([&] {
      for (const auto& covering : coverings) {
        set.SelectCoveringCached(covering, req);
      }
    });
  }
  for (std::thread& t : readers) t.join();

  const CacheCounters after = set.MergedCacheCounters();
  EXPECT_EQ(after.probes, (kReaders + 1) * base.probes);
  EXPECT_EQ(after.misses, after.probes);

  // Stats plane: per-shard distinct cells are unchanged by re-running the
  // same workload concurrently, and nothing was dropped.
  for (size_t s = 0; s < set.num_shards(); ++s) {
    EXPECT_EQ(set.cached_shard(s).stats().dropped(), 0u) << "shard " << s;
  }
}

TEST_F(ConcurrencyStressTest, MergedCountersAreMonotoneUnderLoad) {
  BlockSet set = BlockSet::Build(*sharded_, BlockSetOptions{{kLevel, {}}});
  set.EnableCache(GeoBlockQC::Options{0.05, 0});
  const AggregateRequest req = Request();
  const auto coverings = CoverAll(set);

  std::atomic<bool> stop{false};
  std::thread sampler([&] {
    CacheCounters last;
    while (!stop.load(std::memory_order_relaxed)) {
      const CacheCounters now = set.MergedCacheCounters();
      // Each field is monotone between resets (and we never reset here).
      ASSERT_GE(now.probes, last.probes);
      ASSERT_GE(now.full_hits, last.full_hits);
      ASSERT_GE(now.partial_hits, last.partial_hits);
      ASSERT_GE(now.misses, last.misses);
      last = now;
    }
  });

  std::vector<std::thread> readers;
  for (size_t t = 0; t < 2; ++t) {
    readers.emplace_back([&] {
      for (size_t r = 0; r < 6; ++r) {
        for (const auto& covering : coverings) {
          set.SelectCoveringCached(covering, req);
        }
      }
    });
  }
  for (std::thread& t : readers) t.join();
  stop.store(true, std::memory_order_relaxed);
  sampler.join();
}

TEST_F(ConcurrencyStressTest, BackgroundPoolRebuildKeepsServing) {
  // The ThreadPool rebuild hook: interval crossings submit the rebuild to
  // a pool, so no query thread ever pays the trie construction. After the
  // pool drains, the cache must be warm and answers unchanged.
  util::ThreadPool pool(2);
  BlockSet set = BlockSet::Build(*sharded_, BlockSetOptions{{kLevel, {}}});
  GeoBlockQC::Options options;
  options.threshold = 0.10;
  options.rebuild_interval = 8;
  options.rebuild_pool = &pool;
  set.EnableCache(options);
  const AggregateRequest req = Request();
  const auto coverings = CoverAll(set);

  std::vector<QueryResult> want;
  for (const auto& covering : coverings) {
    want.push_back(set.SelectCovering(covering, req));
  }

  std::vector<std::thread> readers;
  for (size_t t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      for (size_t r = 0; r < 6; ++r) {
        for (size_t i = 0; i < coverings.size(); ++i) {
          const QueryResult got =
              set.SelectCoveringCached(coverings[i], req);
          ASSERT_EQ(got.count, want[i].count) << "reader " << t;
        }
      }
    });
  }
  for (std::thread& t : readers) t.join();
  // Drain pending background rebuilds before inspecting (and before the
  // set goes out of scope — the documented teardown contract).
  pool.WaitIdle();

  size_t cached = 0;
  for (size_t s = 0; s < set.num_shards(); ++s) {
    cached += set.cached_shard(s).trie_snapshot()->num_cached();
  }
  EXPECT_GT(cached, 0u) << "background rebuilds never published a snapshot";
  for (size_t i = 0; i < coverings.size(); ++i) {
    const QueryResult got = set.SelectCoveringCached(coverings[i], req);
    ASSERT_EQ(got.count, want[i].count);
    for (size_t v = 0; v < got.values.size(); ++v) {
      ASSERT_NEAR(got.values[v], want[i].values[v],
                  1e-9 * std::abs(want[i].values[v]) + 1e-6);
    }
  }
}

TEST_F(ConcurrencyStressTest, ConcurrentResetNeverCorruptsCounters) {
  // Reset racing with readers: fields may be sampled mid-reset, but once
  // everything quiesces a final reset + sequential pass must account
  // exactly (no stuck or corrupted counters).
  BlockSet set = BlockSet::Build(*sharded_, BlockSetOptions{{kLevel, {}}});
  set.EnableCache(GeoBlockQC::Options{0.05, 0});
  const AggregateRequest req = Request();
  const auto coverings = CoverAll(set);

  std::atomic<bool> stop{false};
  std::thread resetter([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      set.ResetCacheCounters();
    }
  });
  std::vector<std::thread> readers;
  for (size_t t = 0; t < 2; ++t) {
    readers.emplace_back([&] {
      for (size_t r = 0; r < 8; ++r) {
        for (const auto& covering : coverings) {
          set.SelectCoveringCached(covering, req);
        }
      }
    });
  }
  for (std::thread& t : readers) t.join();
  stop.store(true, std::memory_order_relaxed);
  resetter.join();

  set.ResetCacheCounters();
  for (const auto& covering : coverings) {
    set.SelectCoveringCached(covering, req);
  }
  const CacheCounters last = set.MergedCacheCounters();
  EXPECT_GT(last.probes, 0u);
  EXPECT_EQ(last.probes,
            last.full_hits + last.partial_hits + last.misses);
}

// ---------------------------------------------------------------------------
// The MVCC update plane: BlockSet::ApplyBatchUpdate concurrent with the
// lock-free read paths, with no external serialization.
// ---------------------------------------------------------------------------

/// Builds update batches for the update-plane stress tests: in-cell tuples
/// (hit existing aggregates, spread across shards) and new-region tuples
/// (land in pending buffers and merge-rebuilds).
class UpdatePlaneStressTest : public ConcurrencyStressTest {
 protected:
  static std::vector<GeoBlock::UpdateTuple> InCellBatch(size_t count,
                                                        uint64_t seed) {
    std::mt19937_64 rng(seed);
    std::vector<GeoBlock::UpdateTuple> batch;
    // Sample populated cells across all shards via the sharded views'
    // parent keys (quiesced pre-test setup).
    const auto keys = data_->keys();
    for (size_t i = 0; i < count; ++i) {
      const uint64_t key = keys[rng() % keys.size()];
      const geo::Point unit =
          cell::CellId(key).Parent(kLevel).CenterPoint();
      GeoBlock::UpdateTuple t;
      t.location = data_->projection().FromUnit(unit);
      t.values.assign(data_->num_columns(), 0.0);
      for (size_t c = 0; c < t.values.size(); ++c) {
        t.values[c] = static_cast<double>((rng() % 1000)) / 10.0;
      }
      batch.push_back(std::move(t));
    }
    return batch;
  }

  static std::vector<GeoBlock::UpdateTuple> NewRegionBatch(
      const BlockSet& set, size_t count, uint64_t seed) {
    std::mt19937_64 rng(seed);
    std::vector<GeoBlock::UpdateTuple> batch;
    while (batch.size() < count) {
      const double x = (static_cast<double>(rng() % 100000) + 0.5) / 100000.0;
      const double y = (static_cast<double>(rng() % 100000) + 0.5) / 100000.0;
      const cell::CellId cell = cell::CellId::FromPoint({x, y}).Parent(kLevel);
      bool populated = false;
      for (size_t s = 0; s < set.num_shards(); ++s) {
        const auto& cells = set.shard(s).cells();
        if (std::binary_search(cells.begin(), cells.end(), cell.id())) {
          populated = true;
          break;
        }
      }
      if (populated) continue;
      GeoBlock::UpdateTuple t;
      t.location = data_->projection().FromUnit(cell.CenterPoint());
      t.values.assign(data_->num_columns(), 1.0);
      batch.push_back(std::move(t));
    }
    return batch;
  }
};

TEST_F(UpdatePlaneStressTest, CachedReadsStayInRangeDuringCommits) {
  // N readers run cached SELECT + COUNT while a writer thread commits
  // in-cell batches through BlockSet::ApplyBatchUpdate — no external
  // serialization anywhere. Updates only add tuples, so every concurrent
  // count must land in [pre, pre + total_updates]; after the writer joins,
  // answers must equal a serial re-application oracle bit for bit.
  BlockSet set = BlockSet::Build(*sharded_, BlockSetOptions{{kLevel, {}}});
  set.EnableCache(GeoBlockQC::Options{0.10, /*rebuild_interval=*/16});
  const AggregateRequest req = Request();
  const auto coverings = CoverAll(set);

  // Warm the cache so the stress exercises hits, partial hits, and misses.
  for (const auto& covering : coverings) {
    set.SelectCoveringCached(covering, req);
  }
  set.RebuildCaches();

  std::vector<uint64_t> pre_count;
  for (const auto& covering : coverings) {
    pre_count.push_back(set.CountCovering(covering));
  }

  constexpr size_t kBatches = 20;
  constexpr size_t kBatchSize = 64;
  std::vector<std::vector<GeoBlock::UpdateTuple>> batches;
  for (size_t j = 0; j < kBatches; ++j) {
    batches.push_back(InCellBatch(kBatchSize, 1000 + j));
  }
  const uint64_t total_updates = kBatches * kBatchSize;

  std::atomic<bool> writer_done{false};
  std::thread writer([&] {
    for (const auto& batch : batches) {
      const auto result = set.ApplyBatchUpdate(batch);
      ASSERT_EQ(result.applied, batch.size());  // in-cell by construction
    }
    writer_done.store(true, std::memory_order_release);
  });

  std::vector<std::thread> readers;
  for (size_t t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      size_t rounds = 0;
      do {
        for (size_t i = 0; i < coverings.size(); ++i) {
          const uint64_t count = set.CountCovering(coverings[i]);
          ASSERT_GE(count, pre_count[i]) << "reader " << t;
          ASSERT_LE(count, pre_count[i] + total_updates) << "reader " << t;
          const QueryResult got =
              set.SelectCoveringCached(coverings[i], req);
          ASSERT_GE(got.count, pre_count[i]) << "reader " << t;
          ASSERT_LE(got.count, pre_count[i] + total_updates)
              << "reader " << t;
        }
        ++rounds;
      } while (!writer_done.load(std::memory_order_acquire) || rounds < 3);
    });
  }
  writer.join();
  for (std::thread& t : readers) t.join();

  // Post-commit oracle: the same batches applied serially to an identical
  // set must answer bit-identically (per-shard commit order is batch
  // order in both executions).
  BlockSet oracle = BlockSet::Build(*sharded_, BlockSetOptions{{kLevel, {}}});
  for (const auto& batch : batches) {
    oracle.ApplyBatchUpdate(batch);
  }
  for (size_t i = 0; i < coverings.size(); ++i) {
    const QueryResult want = oracle.SelectCovering(coverings[i], req);
    const QueryResult got = set.SelectCovering(coverings[i], req);
    ASSERT_EQ(got.count, want.count) << "covering " << i;
    ASSERT_EQ(got.values, want.values)
        << "covering " << i << ": post-commit state != serial oracle";
    ASSERT_EQ(set.CountCovering(coverings[i]),
              oracle.CountCovering(coverings[i]));
  }
}

TEST_F(UpdatePlaneStressTest, PinnedSnapshotsBitwiseStableDuringCommits) {
  // A reader that pins per-shard BlockState versions must see bitwise
  // frozen answers for as long as it holds them, no matter how many
  // commits publish successors underneath.
  BlockSet set = BlockSet::Build(*sharded_, BlockSetOptions{{kLevel, {}}});
  const AggregateRequest req = Request();
  const auto coverings = CoverAll(set);

  std::vector<std::shared_ptr<const BlockState>> pinned;
  for (size_t s = 0; s < set.num_shards(); ++s) {
    pinned.push_back(set.shard(s).StateSnapshot());
  }
  const auto pinned_select = [&](const std::vector<cell::CellId>& covering) {
    core::Accumulator acc(&req);
    for (const auto& state : pinned) {
      state->CombineCovering(covering, &acc);
    }
    return acc.Finish();
  };
  std::vector<QueryResult> want;
  std::vector<uint64_t> want_counts;
  for (const auto& covering : coverings) {
    want.push_back(pinned_select(covering));
    uint64_t count = 0;
    for (const auto& state : pinned) count += state->CountCovering(covering);
    want_counts.push_back(count);
  }

  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (size_t t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      while (!stop.load(std::memory_order_relaxed)) {
        for (size_t i = 0; i < coverings.size(); ++i) {
          const QueryResult got = pinned_select(coverings[i]);
          ASSERT_EQ(got.count, want[i].count) << "reader " << t;
          ASSERT_EQ(got.values, want[i].values)
              << "reader " << t << ": pinned snapshot drifted";
          uint64_t count = 0;
          for (const auto& state : pinned) {
            count += state->CountCovering(coverings[i]);
          }
          ASSERT_EQ(count, want_counts[i]) << "reader " << t;
        }
      }
    });
  }

  for (size_t j = 0; j < 16; ++j) {
    set.ApplyBatchUpdate(InCellBatch(128, 2000 + j));
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : readers) t.join();

  // The live set moved on; the pinned versions did not.
  uint64_t live = 0;
  uint64_t frozen = 0;
  const std::vector<cell::CellId> all{cell::CellId::Root()};
  live = set.CountCovering(all);
  for (const auto& state : pinned) frozen += state->CountCovering(all);
  EXPECT_EQ(frozen + 16 * 128, live);
}

TEST_F(UpdatePlaneStressTest, NewRegionMergesConcurrentWithReaders) {
  // Writers push batches mixing in-cell and new-region tuples with a low
  // pending threshold, so merge-rebuilds (new cells, shifting shard hulls)
  // publish while readers hammer the cached path. Readers assert nothing
  // about mid-flight values (routing may lag a merge by design) — the pin
  // is race-freedom plus exact post-quiesce accounting.
  util::ThreadPool pool(2);
  BlockSet set = BlockSet::Build(*sharded_, BlockSetOptions{{kLevel, {}}});
  set.EnableCache(GeoBlockQC::Options{0.10, /*rebuild_interval=*/32});
  BlockSet::UpdateOptions update_options;
  update_options.pending_rebuild_threshold = 8;
  update_options.rebuild_pool = &pool;
  set.ConfigureUpdates(update_options);
  const AggregateRequest req = Request();
  const auto coverings = CoverAll(set);

  constexpr size_t kBatches = 12;
  std::vector<std::vector<GeoBlock::UpdateTuple>> batches;
  size_t total = 0;
  for (size_t j = 0; j < kBatches; ++j) {
    auto batch = InCellBatch(32, 3000 + j);
    const auto fresh = NewRegionBatch(set, 8, 4000 + j);
    batch.insert(batch.end(), fresh.begin(), fresh.end());
    total += batch.size();
    batches.push_back(std::move(batch));
  }

  std::atomic<bool> writer_done{false};
  std::thread writer([&] {
    for (const auto& batch : batches) {
      set.ApplyBatchUpdate(batch);
    }
    writer_done.store(true, std::memory_order_release);
  });
  std::vector<std::thread> readers;
  for (size_t t = 0; t < kReaders; ++t) {
    readers.emplace_back([&] {
      size_t rounds = 0;
      do {
        for (const auto& covering : coverings) {
          (void)set.SelectCoveringCached(covering, req);
          (void)set.CountCovering(covering);
        }
        ++rounds;
      } while (!writer_done.load(std::memory_order_acquire) || rounds < 3);
    });
  }
  writer.join();
  for (std::thread& t : readers) t.join();

  // Quiesce: drain background merges, flush what remains, then the total
  // must account for every tuple exactly once.
  pool.WaitIdle();
  set.FlushPendingUpdates();
  pool.WaitIdle();
  const std::vector<cell::CellId> all{cell::CellId::Root()};
  EXPECT_EQ(set.CountCovering(all), data_->num_rows() + total);
  EXPECT_EQ(set.PendingUpdateCount(), 0u);

  // And the cache must have stayed consistent with the merged states.
  for (const auto& covering : coverings) {
    const QueryResult base = set.SelectCovering(covering, req);
    const QueryResult cached = set.SelectCoveringCached(covering, req);
    ASSERT_EQ(cached.count, base.count);
    for (size_t v = 0; v < base.values.size(); ++v) {
      ASSERT_NEAR(cached.values[v], base.values[v],
                  1e-9 * std::abs(base.values[v]) + 1e-6);
    }
  }
}

TEST_F(UpdatePlaneStressTest, StripedWritersCommitConcurrently) {
  // Several writer threads call ApplyBatchUpdate at once (striped shard
  // locks, no coordination) while readers keep running. Counts are exact
  // after quiescing: every applied tuple lands exactly once.
  BlockSet set = BlockSet::Build(*sharded_, BlockSetOptions{{kLevel, {}}});
  set.EnableCache(GeoBlockQC::Options{0.10, /*rebuild_interval=*/16});
  const AggregateRequest req = Request();
  const auto coverings = CoverAll(set);

  constexpr size_t kWriters = 3;
  constexpr size_t kBatchesPerWriter = 6;
  constexpr size_t kBatchSize = 64;
  std::atomic<size_t> writers_done{0};
  std::vector<std::thread> writers;
  for (size_t w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (size_t j = 0; j < kBatchesPerWriter; ++j) {
        const auto batch = InCellBatch(kBatchSize, 5000 + w * 100 + j);
        const auto result = set.ApplyBatchUpdate(batch);
        ASSERT_EQ(result.applied, batch.size());
      }
      writers_done.fetch_add(1, std::memory_order_release);
    });
  }
  std::vector<std::thread> readers;
  for (size_t t = 0; t < 2; ++t) {
    readers.emplace_back([&] {
      size_t rounds = 0;
      do {
        for (const auto& covering : coverings) {
          (void)set.SelectCoveringCached(covering, req);
        }
        ++rounds;
      } while (writers_done.load(std::memory_order_acquire) < kWriters ||
               rounds < 2);
    });
  }
  for (std::thread& t : writers) t.join();
  for (std::thread& t : readers) t.join();

  const std::vector<cell::CellId> all{cell::CellId::Root()};
  EXPECT_EQ(set.CountCovering(all),
            data_->num_rows() + kWriters * kBatchesPerWriter * kBatchSize);
  // Cache/base agreement after the dust settles.
  for (const auto& covering : coverings) {
    ASSERT_EQ(set.SelectCoveringCached(covering, req).count,
              set.SelectCovering(covering, req).count);
  }
}

}  // namespace
}  // namespace geoblocks
