#include "core/catalog.h"

#include <algorithm>
#include <sstream>

#include "cell/coverer.h"

namespace geoblocks::core {

int LevelForErrorBound(double max_error_meters, double lat) {
  for (int level = 0; level <= cell::CellId::kMaxLevel; ++level) {
    if (cell::ApproxCellDiagonalMeters(level, lat) <= max_error_meters) {
      return level;
    }
  }
  return cell::CellId::kMaxLevel;
}

std::string BlockCatalog::KeyOf(const BlockOptions& options) {
  // Canonical form: predicates sorted by (column, op, value) so that
  // logically equal conjunctions share a block.
  std::vector<storage::Predicate> predicates = options.filter.predicates();
  std::sort(predicates.begin(), predicates.end(),
            [](const storage::Predicate& a, const storage::Predicate& b) {
              if (a.column != b.column) return a.column < b.column;
              if (a.op != b.op) return a.op < b.op;
              return a.value < b.value;
            });
  std::ostringstream key;
  key.precision(17);
  key << "L" << options.level;
  for (const storage::Predicate& p : predicates) {
    key << "|" << p.column << storage::ToString(p.op) << p.value;
  }
  return key.str();
}

const GeoBlock& BlockCatalog::GetOrBuild(const BlockOptions& options) {
  const std::string key = KeyOf(options);
  const auto it = blocks_.find(key);
  if (it != blocks_.end()) return *it->second;
  auto block = std::make_unique<GeoBlock>(GeoBlock::Build(data_, options));
  return *blocks_.emplace(key, std::move(block)).first->second;
}

const GeoBlock& BlockCatalog::ForErrorBound(const storage::Filter& filter,
                                            double max_error_meters) {
  const double lat = 0.5 * (data_.projection().domain().min.y +
                            data_.projection().domain().max.y);
  // Use a latitude representative of the data rather than the domain when
  // the data occupies a small sub-rectangle (the usual case for the
  // whole-earth projection).
  const double data_lat =
      data_.num_rows() > 0 ? data_.ys()[data_.num_rows() / 2] : lat;
  const int required = LevelForErrorBound(max_error_meters, data_lat);

  // Reuse any same-filter block at `required` or finer.
  const GeoBlock* best = nullptr;
  for (const auto& [key, block] : blocks_) {
    if (block->level() < required) continue;
    BlockOptions probe;
    probe.level = block->level();
    probe.filter = filter;
    if (KeyOf(probe) == key) {
      if (best == nullptr || block->level() < best->level()) {
        best = block.get();
      }
    }
  }
  if (best != nullptr) return *best;
  BlockOptions options;
  options.level = required;
  options.filter = filter;
  return GetOrBuild(options);
}

bool BlockCatalog::Contains(const BlockOptions& options) const {
  return blocks_.count(KeyOf(options)) > 0;
}

bool BlockCatalog::Drop(const BlockOptions& options) {
  return blocks_.erase(KeyOf(options)) > 0;
}

size_t BlockCatalog::TotalMemoryBytes() const {
  size_t bytes = 0;
  for (const auto& [key, block] : blocks_) bytes += block->MemoryBytes();
  return bytes;
}

}  // namespace geoblocks::core
