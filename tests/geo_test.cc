#include <gtest/gtest.h>

#include "geo/point.h"
#include "geo/projection.h"
#include "geo/rect.h"
#include "geo/segment.h"

namespace geoblocks::geo {
namespace {

TEST(PointTest, Distance) {
  EXPECT_DOUBLE_EQ((Point{0, 0}.DistanceTo({3, 4})), 5.0);
  EXPECT_DOUBLE_EQ((Point{1, 1}.DistanceTo({1, 1})), 0.0);
}

TEST(PointTest, Cross) {
  EXPECT_GT(Cross({0, 0}, {1, 0}, {0, 1}), 0.0);   // left turn
  EXPECT_LT(Cross({0, 0}, {1, 0}, {0, -1}), 0.0);  // right turn
  EXPECT_EQ(Cross({0, 0}, {1, 1}, {2, 2}), 0.0);   // collinear
}

TEST(RectTest, EmptyBehaviour) {
  const Rect empty = Rect::Empty();
  EXPECT_TRUE(empty.IsEmpty());
  EXPECT_EQ(empty.Area(), 0.0);
  EXPECT_FALSE(empty.Contains(Point{0, 0}));
  const Rect r{{0, 0}, {1, 1}};
  EXPECT_FALSE(empty.Intersects(r));
  EXPECT_FALSE(r.Intersects(empty));
  EXPECT_TRUE(r.Contains(empty));
  EXPECT_FALSE(empty.Contains(r));
  EXPECT_EQ(empty.Union(r), r);
  EXPECT_EQ(r.Union(empty), r);
}

TEST(RectTest, ContainsPoint) {
  const Rect r{{0, 0}, {2, 1}};
  EXPECT_TRUE(r.Contains(Point{1, 0.5}));
  EXPECT_TRUE(r.Contains(Point{0, 0}));    // closed: corners included
  EXPECT_TRUE(r.Contains(Point{2, 1}));
  EXPECT_FALSE(r.Contains(Point{2.01, 0.5}));
  EXPECT_FALSE(r.Contains(Point{1, -0.01}));
}

TEST(RectTest, ContainsRect) {
  const Rect outer{{0, 0}, {10, 10}};
  EXPECT_TRUE(outer.Contains(Rect{{1, 1}, {9, 9}}));
  EXPECT_TRUE(outer.Contains(outer));
  EXPECT_FALSE(outer.Contains(Rect{{1, 1}, {11, 9}}));
}

TEST(RectTest, IntersectsAndIntersection) {
  const Rect a{{0, 0}, {2, 2}};
  const Rect b{{1, 1}, {3, 3}};
  const Rect c{{5, 5}, {6, 6}};
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(a.Intersects(c));
  EXPECT_EQ(a.Intersection(b), (Rect{{1, 1}, {2, 2}}));
  EXPECT_TRUE(a.Intersection(c).IsEmpty());
  // Touching edges count as intersecting (closed rectangles).
  EXPECT_TRUE(a.Intersects(Rect{{2, 0}, {3, 2}}));
}

TEST(RectTest, UnionAndAddPoint) {
  Rect r = Rect::Empty();
  r.AddPoint({1, 2});
  r.AddPoint({-1, 5});
  EXPECT_EQ(r, (Rect{{-1, 2}, {1, 5}}));
  EXPECT_EQ(r.Union(Rect{{0, 0}, {2, 2}}), (Rect{{-1, 0}, {2, 5}}));
}

TEST(RectTest, GeometryAccessors) {
  const Rect r{{0, 0}, {3, 4}};
  EXPECT_DOUBLE_EQ(r.Width(), 3.0);
  EXPECT_DOUBLE_EQ(r.Height(), 4.0);
  EXPECT_DOUBLE_EQ(r.Area(), 12.0);
  EXPECT_DOUBLE_EQ(r.Diagonal(), 5.0);
  EXPECT_EQ(r.Center(), (Point{1.5, 2.0}));
  const auto corners = r.Corners();
  EXPECT_EQ(corners[0], (Point{0, 0}));
  EXPECT_EQ(corners[2], (Point{3, 4}));
}

TEST(RectTest, Expanded) {
  const Rect r{{0, 0}, {2, 2}};
  EXPECT_EQ(r.Expanded(1.0), (Rect{{-1, -1}, {3, 3}}));
  EXPECT_EQ(r.Expanded(-0.5), (Rect{{0.5, 0.5}, {1.5, 1.5}}));
}

TEST(SegmentTest, OnSegment) {
  const Segment s{{0, 0}, {2, 2}};
  EXPECT_TRUE(OnSegment(s, {1, 1}));
  EXPECT_TRUE(OnSegment(s, {0, 0}));
  EXPECT_TRUE(OnSegment(s, {2, 2}));
  EXPECT_FALSE(OnSegment(s, {3, 3}));  // collinear but outside
  EXPECT_FALSE(OnSegment(s, {1, 0}));
}

TEST(SegmentTest, ProperIntersection) {
  EXPECT_TRUE(SegmentsIntersect({{0, 0}, {2, 2}}, {{0, 2}, {2, 0}}));
  EXPECT_FALSE(SegmentsIntersect({{0, 0}, {1, 1}}, {{2, 2}, {3, 3}}));
  EXPECT_FALSE(SegmentsIntersect({{0, 0}, {1, 0}}, {{0, 1}, {1, 1}}));
}

TEST(SegmentTest, TouchingEndpoints) {
  EXPECT_TRUE(SegmentsIntersect({{0, 0}, {1, 1}}, {{1, 1}, {2, 0}}));
  EXPECT_TRUE(SegmentsIntersect({{0, 0}, {2, 0}}, {{1, 0}, {1, 1}}));
}

TEST(SegmentTest, CollinearOverlap) {
  EXPECT_TRUE(SegmentsIntersect({{0, 0}, {2, 0}}, {{1, 0}, {3, 0}}));
  EXPECT_FALSE(SegmentsIntersect({{0, 0}, {1, 0}}, {{2, 0}, {3, 0}}));
}

TEST(SegmentTest, ZeroLengthSegments) {
  EXPECT_TRUE(SegmentsIntersect({{1, 1}, {1, 1}}, {{0, 0}, {2, 2}}));
  EXPECT_FALSE(SegmentsIntersect({{1, 2}, {1, 2}}, {{0, 0}, {2, 2}}));
}

TEST(SegmentTest, IntersectsRect) {
  const Rect r{{0, 0}, {2, 2}};
  EXPECT_TRUE(SegmentIntersectsRect({{1, 1}, {5, 5}}, r));   // one end inside
  EXPECT_TRUE(SegmentIntersectsRect({{-1, 1}, {3, 1}}, r));  // crosses
  EXPECT_TRUE(SegmentIntersectsRect({{-1, 0}, {3, 0}}, r));  // along an edge
  EXPECT_FALSE(SegmentIntersectsRect({{3, 3}, {5, 5}}, r));
  EXPECT_FALSE(SegmentIntersectsRect({{-1, 3}, {3, 7}}, r));
}

TEST(ProjectionTest, RoundTrip) {
  const Projection proj;
  const Point nyc{-73.98, 40.75};
  const Point unit = proj.ToUnit(nyc);
  EXPECT_GT(unit.x, 0.0);
  EXPECT_LT(unit.x, 1.0);
  const Point back = proj.FromUnit(unit);
  EXPECT_NEAR(back.x, nyc.x, 1e-9);
  EXPECT_NEAR(back.y, nyc.y, 1e-9);
}

TEST(ProjectionTest, ClampsToDomain) {
  const Projection proj(Rect{{0, 0}, {10, 10}});
  const Point below = proj.ToUnit(Point{-5, -5});
  EXPECT_EQ(below, (Point{0, 0}));
  const Point above = proj.ToUnit(Point{20, 20});
  EXPECT_LT(above.x, 1.0);
  EXPECT_LT(above.y, 1.0);
}

TEST(ProjectionTest, PolygonProjection) {
  const Projection proj(Rect{{0, 0}, {10, 10}});
  const Polygon poly{{1, 1}, {9, 1}, {5, 9}};
  const Polygon unit = proj.ToUnit(poly);
  EXPECT_EQ(unit.num_vertices(), 3u);
  EXPECT_TRUE(unit.Contains(Point{0.5, 0.3}));
  EXPECT_FALSE(unit.Contains(Point{0.05, 0.9}));
}

TEST(ProjectionTest, MetersScale) {
  const Projection proj;
  // One unit of y spans 180 degrees of latitude ~ 20,000 km.
  EXPECT_NEAR(proj.MetersPerUnitY(), 180.0 * 111320.0, 1.0);
  EXPECT_LT(proj.MetersPerUnitX(60.0), proj.MetersPerUnitX(0.0));
}

}  // namespace
}  // namespace geoblocks::geo
